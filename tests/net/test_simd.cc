/**
 * @file
 * Differential tests for the runtime-dispatched SIMD kernel layer:
 * every backend the host supports must be bit-identical to the
 * generic reference on random and adversarial inputs, and the
 * PB_SIMD resolution logic must fall back safely.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "net/ipv4.hh"
#include "net/scramble.hh"
#include "net/simd/kernels.hh"

namespace
{

using namespace pb;
using namespace pb::net;
using namespace pb::net::simd;

/** Every backend runnable on this host, generic first. */
std::vector<Backend>
supportedBackends()
{
    std::vector<Backend> list;
    for (unsigned b = 0; b < numBackends; b++) {
        Backend backend = static_cast<Backend>(b);
        if (backendSupported(backend))
            list.push_back(backend);
    }
    return list;
}

TEST(SimdDispatch, NamesRoundTrip)
{
    for (unsigned b = 0; b < numBackends; b++) {
        Backend backend = static_cast<Backend>(b);
        auto parsed = parseBackendName(backendName(backend));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, backend);
    }
    EXPECT_FALSE(parseBackendName("").has_value());
    EXPECT_FALSE(parseBackendName("avx512").has_value());
    EXPECT_FALSE(parseBackendName("SSE42").has_value());
}

TEST(SimdDispatch, GenericAlwaysSupported)
{
    EXPECT_TRUE(backendSupported(Backend::Generic));
    // bestSupportedBackend() must itself be supported.
    EXPECT_TRUE(backendSupported(bestSupportedBackend()));
}

TEST(SimdDispatch, ResolveBackendHonorsOverride)
{
    Backend best = bestSupportedBackend();
    // No override (or empty): the best backend wins.
    EXPECT_EQ(detail::resolveBackend(nullptr, best), best);
    EXPECT_EQ(detail::resolveBackend("", best), best);
    // Malformed name: warn-and-fallback, never a crash.
    EXPECT_EQ(detail::resolveBackend("turbo9000", best), best);
    // Any supported backend can be forced; an unsupported one
    // degrades to best so forced CI legs are safe everywhere.
    for (unsigned b = 0; b < numBackends; b++) {
        Backend backend = static_cast<Backend>(b);
        std::string name(backendName(backend));
        Backend got = detail::resolveBackend(name.c_str(), best);
        if (backendSupported(backend))
            EXPECT_EQ(got, backend) << name;
        else
            EXPECT_EQ(got, best) << name;
    }
}

TEST(SimdDispatch, ActiveBackendMatchesResolution)
{
    EXPECT_EQ(activeBackend(),
              detail::resolveBackend(std::getenv("PB_SIMD"),
                                     bestSupportedBackend()));
}

#if defined(__x86_64__) || defined(__i386__)
TEST(SimdDispatch, VectorBackendSelectedOnCapableHost)
{
    // Acceptance: on a host with AVX2 (or SSE4.2), the runtime
    // dispatcher must not quietly fall back to generic.
    if (!backendSupported(Backend::Sse42) &&
        !backendSupported(Backend::Avx2))
        GTEST_SKIP() << "host has no vector backend";
    EXPECT_NE(bestSupportedBackend(), Backend::Generic);
    if (backendSupported(Backend::Avx2)) {
        EXPECT_EQ(bestSupportedBackend(), Backend::Avx2);
    }
    const char *forced = std::getenv("PB_SIMD");
    if (!forced || !*forced) {
        EXPECT_NE(activeBackend(), Backend::Generic);
    }
}
#endif

TEST(SimdChecksum, BackendsMatchGenericOnRandomBuffers)
{
    const KernelTable &ref = backendTable(Backend::Generic);
    Rng rng(101);
    // Adversarial lengths: empty, single byte, every length through
    // two vector chunks, a 20/60-byte header, and odd tails.
    std::vector<unsigned> lens;
    for (unsigned len = 0; len <= 80; len++)
        lens.push_back(len);
    for (unsigned len : {127u, 128u, 129u, 255u, 1000u, 1001u, 4096u})
        lens.push_back(len);
    for (Backend backend : supportedBackends()) {
        const KernelTable &kern = backendTable(backend);
        for (unsigned len : lens) {
            std::vector<uint8_t> buf(len);
            for (auto &byte : buf)
                byte = static_cast<uint8_t>(rng.below(256));
            EXPECT_EQ(kern.checksum(buf.data(), len),
                      ref.checksum(buf.data(), len))
                << backendName(backend) << " len " << len;
        }
    }
}

TEST(SimdChecksum, BackendsMatchGenericOnAllOnesAndCarryChains)
{
    // All-0xff buffers maximize carry traffic through the fold; they
    // historically shake out lane-overflow bugs.
    const KernelTable &ref = backendTable(Backend::Generic);
    for (Backend backend : supportedBackends()) {
        const KernelTable &kern = backendTable(backend);
        for (unsigned len : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 20u,
                             60u, 65535u}) {
            std::vector<uint8_t> buf(len, 0xff);
            EXPECT_EQ(kern.checksum(buf.data(), len),
                      ref.checksum(buf.data(), len))
                << backendName(backend) << " len " << len;
        }
    }
}

TEST(SimdChecksum, LargeBufferDoesNotOverflowLanes)
{
    // > 2^18 bytes forces the vector backends through their
    // accumulator drain at least once.
    const KernelTable &ref = backendTable(Backend::Generic);
    std::vector<uint8_t> buf((1u << 19) + 7, 0xff);
    Rng rng(55);
    for (size_t i = 0; i < buf.size(); i += 97)
        buf[i] = static_cast<uint8_t>(rng.below(256));
    for (Backend backend : supportedBackends()) {
        EXPECT_EQ(backendTable(backend).checksum(
                      buf.data(),
                      static_cast<unsigned>(buf.size())),
                  ref.checksum(buf.data(),
                               static_cast<unsigned>(buf.size())))
            << backendName(backend);
    }
}

TEST(SimdChecksum, MatchesInetChecksumAndKnownVectors)
{
    // The dispatched net::inetChecksum must agree with the reference
    // kernel and with the historical known answers.
    uint8_t hdr[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                       0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                       0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
    EXPECT_EQ(inetChecksum(hdr, 20), 0xb861);
    uint8_t odd[3] = {0x12, 0x34, 0x56};
    EXPECT_EQ(inetChecksum(odd, 3), 0x97cb);
    for (Backend backend : supportedBackends()) {
        EXPECT_EQ(backendTable(backend).checksum(hdr, 20), 0xb861)
            << backendName(backend);
        EXPECT_EQ(backendTable(backend).checksum(odd, 3), 0x97cb)
            << backendName(backend);
    }
}

TEST(SimdChecksum, BatchMatchesSingle)
{
    Rng rng(77);
    constexpr unsigned n = 33; // odd count: exercises remainders
    std::vector<std::vector<uint8_t>> bufs(n);
    const uint8_t *ptrs[n];
    unsigned lens[n];
    for (unsigned i = 0; i < n; i++) {
        lens[i] = rng.below(128); // includes runts and length 0
        bufs[i].resize(lens[i]);
        for (auto &byte : bufs[i])
            byte = static_cast<uint8_t>(rng.below(256));
        ptrs[i] = bufs[i].data();
    }
    for (Backend backend : supportedBackends()) {
        const KernelTable &kern = backendTable(backend);
        uint16_t out[n];
        kern.checksumBatch(ptrs, lens, out, n);
        for (unsigned i = 0; i < n; i++) {
            EXPECT_EQ(out[i], kern.checksum(ptrs[i], lens[i]))
                << backendName(backend) << " buf " << i;
        }
    }
}

TEST(SimdFlowHash, BackendsMatchScalarFlowHash)
{
    Rng rng(202);
    for (unsigned n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
        std::vector<uint32_t> src(n), dst(n), ports(n), proto(n);
        std::vector<FiveTuple> tuples(n);
        for (unsigned i = 0; i < n; i++) {
            FiveTuple &tuple = tuples[i];
            tuple.src = rng.next();
            tuple.dst = rng.next();
            tuple.srcPort = static_cast<uint16_t>(rng.next());
            tuple.dstPort = static_cast<uint16_t>(rng.next());
            tuple.proto = static_cast<uint8_t>(rng.below(256));
            src[i] = tuple.src;
            dst[i] = tuple.dst;
            ports[i] =
                (static_cast<uint32_t>(tuple.srcPort) << 16) |
                tuple.dstPort;
            proto[i] = tuple.proto;
        }
        for (Backend backend : supportedBackends()) {
            std::vector<uint32_t> out(n + 1, 0xdeadbeef);
            backendTable(backend).flowHashBatch(
                src.data(), dst.data(), ports.data(), proto.data(),
                out.data(), n);
            for (unsigned i = 0; i < n; i++) {
                EXPECT_EQ(out[i], flowHash(tuples[i]))
                    << backendName(backend) << " n " << n << " lane "
                    << i;
            }
            // One-past-the-end stays untouched.
            EXPECT_EQ(out[n], 0xdeadbeefu) << backendName(backend);
        }
    }
}

TEST(SimdFeistel, BackendsMatchAddressScrambler)
{
    Rng rng(303);
    AddressScrambler scrambler(0x5ca1ab1e);
    for (unsigned n : {0u, 1u, 3u, 4u, 5u, 8u, 13u, 32u, 41u}) {
        std::vector<uint32_t> in(n);
        for (auto &addr : in)
            addr = rng.next();
        // Corner addresses when there is room.
        if (n >= 3) {
            in[0] = 0;
            in[1] = 0xffffffffu;
            in[2] = 0x7fff8000u;
        }
        for (Backend backend : supportedBackends()) {
            std::vector<uint32_t> out(n);
            backendTable(backend).feistelBatch(
                in.data(), out.data(), n, 0x5ca1ab1e, 4);
            for (unsigned i = 0; i < n; i++) {
                EXPECT_EQ(out[i], scrambler.scramble(in[i]))
                    << backendName(backend) << " lane " << i;
                EXPECT_EQ(scrambler.unscramble(out[i]), in[i])
                    << backendName(backend) << " lane " << i;
            }
        }
    }
}

TEST(SimdFeistel, InPlaceAndScrambleBatchAgree)
{
    Rng rng(404);
    AddressScrambler scrambler(0xfeedface);
    constexpr unsigned n = 19;
    std::vector<uint32_t> addrs(n);
    for (auto &addr : addrs)
        addr = rng.next();
    std::vector<uint32_t> inplace = addrs;
    scrambler.scrambleBatch(inplace.data(), inplace.data(), n);
    for (unsigned i = 0; i < n; i++)
        EXPECT_EQ(inplace[i], scrambler.scramble(addrs[i])) << i;
}

TEST(SimdClear, ZeroesExactlyTheRequestedRange)
{
    // Canary bytes on both sides of the cleared window must survive
    // every length and offset combination.
    for (Backend backend : supportedBackends()) {
        const KernelTable &kern = backendTable(backend);
        for (size_t len : {size_t{0}, size_t{1}, size_t{15},
                           size_t{16}, size_t{17}, size_t{31},
                           size_t{32}, size_t{63}, size_t{64},
                           size_t{65}, size_t{127}, size_t{128},
                           size_t{129}, size_t{1000}}) {
            for (size_t offset : {size_t{0}, size_t{1}, size_t{7}}) {
                std::vector<uint8_t> buf(offset + len + 8, 0xab);
                kern.clearBytes(buf.data() + offset, len);
                for (size_t i = 0; i < offset; i++)
                    EXPECT_EQ(buf[i], 0xab)
                        << backendName(backend) << " len " << len;
                for (size_t i = 0; i < len; i++)
                    EXPECT_EQ(buf[offset + i], 0)
                        << backendName(backend) << " len " << len;
                for (size_t i = offset + len; i < buf.size(); i++)
                    EXPECT_EQ(buf[i], 0xab)
                        << backendName(backend) << " len " << len;
            }
        }
    }
}

TEST(SimdHashPacketBatch, MatchesScalarParsePath)
{
    // hashPacketBatch must agree lane-for-lane with parseFiveTuple +
    // flowHash, including invalid lanes interleaved at every
    // position (the dispatcher depends on this for serial/parallel
    // bit-identity).
    Rng rng(505);
    std::vector<net::Packet> packets;
    for (unsigned i = 0; i < 37; i++) {
        net::Packet packet;
        FiveTuple tuple;
        tuple.src = rng.next();
        tuple.dst = rng.next();
        tuple.srcPort = static_cast<uint16_t>(rng.next());
        tuple.dstPort = static_cast<uint16_t>(rng.next());
        tuple.proto = static_cast<uint8_t>(
            (i % 3) ? IpProto::Tcp : IpProto::Udp);
        packet.bytes = buildIpv4Packet(tuple, 40);
        switch (i % 5) {
          case 0: // runt: too short for any header
            packet.bytes.resize(8);
            break;
          case 1: // wrong version
            packet.bytes[0] = 0x65;
            break;
          case 2: // non-first fragment: ports must not be read
            storeBe16(packet.bytes.data() + ipv4::offFlagsFrag,
                      0x2000 | 5);
            break;
          default:
            break;
        }
        packets.push_back(std::move(packet));
    }
    const unsigned n = static_cast<unsigned>(packets.size());
    std::vector<const net::Packet *> ptrs;
    for (const auto &packet : packets)
        ptrs.push_back(&packet);
    std::vector<uint32_t> hash(n);
    std::vector<uint8_t> valid_bytes(n); // bool storage
    hashPacketBatch(ptrs.data(), n, hash.data(),
                    reinterpret_cast<bool *>(valid_bytes.data()));
    for (unsigned i = 0; i < n; i++) {
        FiveTuple tuple;
        bool want_valid = parseFiveTuple(packets[i], tuple);
        EXPECT_EQ(static_cast<bool>(valid_bytes[i]), want_valid)
            << i;
        if (want_valid) {
            EXPECT_EQ(hash[i], flowHash(tuple)) << i;
        }
    }
}

} // namespace
