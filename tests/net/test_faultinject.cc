/**
 * @file
 * Fault-injecting trace source tests: period, determinism, the
 * per-kind corruption guarantees, and the keepInjected capture.
 */

#include <gtest/gtest.h>

#include "net/faultinject.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::net;

std::vector<Packet>
drain(TraceSource &source)
{
    std::vector<Packet> packets;
    while (auto packet = source.next())
        packets.push_back(std::move(*packet));
    return packets;
}

TEST(FaultInject, CorruptsEveryNthPacket)
{
    SyntheticTrace trace(Profile::MRA, 200, 3);
    FaultInjectConfig cfg;
    cfg.period = 10;
    FaultInjectingTraceSource source(trace, cfg);

    uint64_t index = 0;
    uint64_t corrupted = 0;
    while (auto packet = source.next()) {
        index++;
        if (source.lastFault() != InjectedFault::None) {
            corrupted++;
            EXPECT_EQ(index % 10, 0u)
                << "corruption off-period at packet " << index;
        }
    }
    EXPECT_EQ(index, 200u);
    EXPECT_EQ(corrupted, 20u);
    EXPECT_EQ(source.injectedCount(), 20u);
}

TEST(FaultInject, PeriodZeroDisablesInjection)
{
    SyntheticTrace trace(Profile::LAN, 50, 1);
    FaultInjectConfig cfg;
    cfg.period = 0;
    FaultInjectingTraceSource source(trace, cfg);
    drain(source);
    EXPECT_EQ(source.injectedCount(), 0u);
}

TEST(FaultInject, DeterministicAcrossInstances)
{
    // Two injectors with the same seed over identical upstreams must
    // emit byte-identical streams — the property that lets serial
    // and parallel runs be compared on faulting traces.
    FaultInjectConfig cfg;
    cfg.period = 7;
    cfg.seed = 42;

    SyntheticTrace trace_a(Profile::COS, 150, 9);
    SyntheticTrace trace_b(Profile::COS, 150, 9);
    FaultInjectingTraceSource source_a(trace_a, cfg);
    FaultInjectingTraceSource source_b(trace_b, cfg);
    auto packets_a = drain(source_a);
    auto packets_b = drain(source_b);

    ASSERT_EQ(packets_a.size(), packets_b.size());
    for (size_t i = 0; i < packets_a.size(); i++)
        EXPECT_EQ(packets_a[i].bytes, packets_b[i].bytes)
            << "stream diverged at packet " << i;
    EXPECT_EQ(source_a.injectedCount(), source_b.injectedCount());
}

TEST(FaultInject, TruncationLeavesNoL3Bytes)
{
    SyntheticTrace trace(Profile::LAN, 100, 5);
    FaultInjectConfig cfg;
    cfg.period = 5;
    cfg.bitFlips = false;
    cfg.truncation = true;
    cfg.headerCorruption = false;
    cfg.oversize = false;
    FaultInjectingTraceSource source(trace, cfg);
    uint64_t checked = 0;
    while (auto packet = source.next()) {
        if (source.lastFault() == InjectedFault::Truncate) {
            EXPECT_EQ(packet->l3Len(), 0u);
            checked++;
        }
    }
    EXPECT_EQ(checked, source.injectedCount());
    EXPECT_GT(checked, 0u);
}

TEST(FaultInject, OversizeGrowsBeyondPacketMemory)
{
    SyntheticTrace trace(Profile::MRA, 100, 5);
    FaultInjectConfig cfg;
    cfg.period = 10;
    cfg.bitFlips = false;
    cfg.truncation = false;
    cfg.headerCorruption = false;
    cfg.oversize = true;
    FaultInjectingTraceSource source(trace, cfg);
    uint64_t checked = 0;
    while (auto packet = source.next()) {
        if (source.lastFault() == InjectedFault::Oversize) {
            EXPECT_GE(packet->l3Len(), cfg.oversizeLen);
            checked++;
        }
    }
    EXPECT_EQ(checked, 10u);
}

TEST(FaultInject, NoKindsEnabledInjectsNothing)
{
    SyntheticTrace trace(Profile::LAN, 40, 2);
    FaultInjectConfig cfg;
    cfg.period = 4;
    cfg.bitFlips = false;
    cfg.truncation = false;
    cfg.headerCorruption = false;
    cfg.oversize = false;
    FaultInjectingTraceSource source(trace, cfg);
    drain(source);
    EXPECT_EQ(source.injectedCount(), 0u);
}

TEST(FaultInject, KeepInjectedMatchesEmittedBytes)
{
    SyntheticTrace trace(Profile::MRA, 120, 11);
    FaultInjectConfig cfg;
    cfg.period = 12;
    cfg.keepInjected = true;
    FaultInjectingTraceSource source(trace, cfg);

    std::vector<Packet> corrupted;
    while (auto packet = source.next()) {
        if (source.lastFault() != InjectedFault::None)
            corrupted.push_back(std::move(*packet));
    }
    const auto &kept = source.injectedPackets();
    ASSERT_EQ(kept.size(), corrupted.size());
    for (size_t i = 0; i < kept.size(); i++)
        EXPECT_EQ(kept[i].bytes, corrupted[i].bytes);
}

TEST(FaultInject, NameReflectsUpstream)
{
    SyntheticTrace trace(Profile::MRA, 1, 1);
    FaultInjectingTraceSource source(trace);
    EXPECT_EQ(source.name(), trace.name() + "+faults");
}

TEST(FaultInject, KindNamesAreStable)
{
    EXPECT_STREQ(injectedFaultName(InjectedFault::None), "none");
    EXPECT_STREQ(injectedFaultName(InjectedFault::BitFlip),
                 "bit-flip");
    EXPECT_STREQ(injectedFaultName(InjectedFault::Truncate),
                 "truncate");
    EXPECT_STREQ(injectedFaultName(InjectedFault::HeaderCorrupt),
                 "header-corrupt");
    EXPECT_STREQ(injectedFaultName(InjectedFault::Oversize),
                 "oversize");
    EXPECT_STREQ(injectedFaultName(InjectedFault::PayloadBloat),
                 "payload-bloat");
}

} // namespace
