/**
 * @file
 * NLANR TSH format tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/ipv4.hh"
#include "net/trace.hh" // TraceFormatError, TraceIoError
#include "net/tsh.hh"

namespace
{

using namespace pb;
using namespace pb::net;

Packet
headerPacket(uint32_t src, uint16_t total_len, uint64_t ts)
{
    FiveTuple tuple;
    tuple.src = src;
    tuple.dst = 0xc0000201;
    tuple.srcPort = 4242;
    tuple.dstPort = 80;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 36); // 20 IP + 16 L4 bytes
    Ipv4View ip(packet.bytes.data());
    ip.setTotalLen(total_len);
    fillIpv4Checksum(packet.bytes.data(), 20);
    packet.wireLen = total_len;
    packet.tsUsec = ts;
    return packet;
}

TEST(Tsh, WriteReadRoundTrip)
{
    std::stringstream stream;
    TshWriter writer(stream);
    std::vector<Packet> sent;
    for (int i = 0; i < 10; i++) {
        Packet packet = headerPacket(
            0x0a000001u + static_cast<uint32_t>(i),
            static_cast<uint16_t>(40 + i * 100),
            123'456'789ull + static_cast<uint64_t>(i) * 1000);
        writer.write(packet);
        sent.push_back(std::move(packet));
    }
    EXPECT_EQ(stream.str().size(), 10 * tshRecordLen);

    TshReader reader(stream, "rt");
    for (int i = 0; i < 10; i++) {
        auto got = reader.next();
        ASSERT_TRUE(got) << i;
        EXPECT_EQ(got->bytes.size(), 36u) << "TSH captures 36 bytes";
        EXPECT_EQ(got->bytes, sent[i].bytes);
        EXPECT_EQ(got->tsUsec, sent[i].tsUsec);
        // wireLen reconstructed from the IP total length.
        EXPECT_EQ(got->wireLen, sent[i].wireLen);
        EXPECT_EQ(got->l3Offset, 0);
    }
    EXPECT_FALSE(reader.next());
}

TEST(Tsh, TruncatedRecordThrows)
{
    std::stringstream stream;
    TshWriter writer(stream);
    writer.write(headerPacket(1, 100, 0));
    std::string data = stream.str();
    data.resize(tshRecordLen - 5);
    std::stringstream bad(data);
    TshReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(Tsh, NonIpv4RecordThrows)
{
    std::string data(tshRecordLen, '\0');
    data[8] = 0x62; // version 6 in the IP header slot
    std::stringstream bad(data);
    TshReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(Tsh, WriterRejectsHeaderlessPacket)
{
    Packet tiny;
    tiny.bytes = {0x45, 0x00};
    std::stringstream stream;
    TshWriter writer(stream);
    EXPECT_THROW(writer.write(tiny), FatalError);
}

TEST(Tsh, MissingFileIsFatal)
{
    EXPECT_THROW(openTshFile("/nonexistent.tsh"), FatalError);
}

TEST(Tsh, BadStreamThrowsIoErrorNotFormatError)
{
    // A zero-byte read on a broken stream is an I/O failure, not a
    // clean EOF and not a "truncated record".
    std::stringstream stream;
    TshWriter writer(stream);
    writer.write(headerPacket(1, 100, 0));
    TshReader reader(stream);
    stream.setstate(std::ios::badbit);
    EXPECT_THROW(reader.next(), TraceIoError);
}

TEST(TshRecovery, SkipResyncsPastNonIpv4Record)
{
    // TSH records are fixed-size, so resync after a bad record is
    // trivial: read the next 44 bytes.
    std::stringstream stream;
    TshWriter writer(stream);
    writer.write(headerPacket(1, 100, 10));
    std::string good2;
    {
        std::stringstream tmp;
        TshWriter w2(tmp);
        w2.write(headerPacket(2, 200, 20));
        good2 = tmp.str();
    }
    std::string bad(tshRecordLen, '\0');
    bad[8] = 0x62; // version 6 in the IP header slot
    std::string data = stream.str() + bad + good2;

    std::stringstream in(data);
    TshReader reader(in, "resync", ReadRecovery::Skip);
    auto first = reader.next();
    ASSERT_TRUE(first);
    EXPECT_EQ(Ipv4ConstView(first->bytes.data()).src(), 1u);
    auto second = reader.next();
    ASSERT_TRUE(second) << "reader must resync past the bad record";
    EXPECT_EQ(Ipv4ConstView(second->bytes.data()).src(), 2u);
    EXPECT_FALSE(reader.next());
    EXPECT_EQ(reader.malformedRecords(), 1u);
}

TEST(TshRecovery, SkipCountsTruncatedTail)
{
    std::stringstream stream;
    TshWriter writer(stream);
    writer.write(headerPacket(1, 100, 0));
    writer.write(headerPacket(2, 100, 1));
    std::string data = stream.str();
    data.resize(data.size() - 5); // chop into the second record
    std::stringstream in(data);
    TshReader reader(in, "tail", ReadRecovery::Skip);
    EXPECT_TRUE(reader.next());
    EXPECT_FALSE(reader.next()) << "partial tail is end of trace";
    EXPECT_EQ(reader.malformedRecords(), 1u);
}

} // namespace
