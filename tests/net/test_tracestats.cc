/**
 * @file
 * Trace statistics tests.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/ipv4.hh"
#include "net/tracegen.hh"
#include "net/tracestats.hh"

namespace
{

using namespace pb;
using namespace pb::net;

TEST(TraceStats, CountsAndMix)
{
    SyntheticTrace trace(Profile::MRA, 5000, 3);
    TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.packets, 5000u);
    EXPECT_EQ(stats.ipv4Packets, 5000u);
    EXPECT_GT(stats.bytesOnWire, stats.bytesCaptured);
    EXPECT_GE(stats.minWireLen, 28u);
    EXPECT_LE(stats.maxWireLen, 1500u);
    EXPECT_GT(stats.durationSec(), 0.0);
    // Protocol mix roughly matches the profile.
    double tcp_frac =
        static_cast<double>(stats.tcp) / stats.ipv4Packets;
    EXPECT_NEAR(tcp_frac, profileInfo(Profile::MRA).pTcp, 0.15);
    // NLANR renumbering: addresses dense and countable.
    EXPECT_GT(stats.distinctAddrs, 100u);
    // Mean flow length ~10 over 5000 packets, but the concurrent
    // flow pool keeps many flows open at trace end.
    EXPECT_GT(stats.distinctFlows, 300u);
    EXPECT_LT(stats.distinctFlows, 3500u);
}

TEST(TraceStats, MaxPacketsLimit)
{
    SyntheticTrace trace(Profile::LAN, 1000, 1);
    TraceStats stats = collectTraceStats(trace, 100);
    EXPECT_EQ(stats.packets, 100u);
}

TEST(TraceStats, EmptySourceIsSane)
{
    SyntheticTrace trace(Profile::LAN, 5, 1);
    collectTraceStats(trace); // drain
    TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.packets, 0u);
    EXPECT_EQ(stats.meanWireLen(), 0.0);
    EXPECT_EQ(stats.durationSec(), 0.0);
}

TEST(TraceStats, ReportMentionsKeyNumbers)
{
    SyntheticTrace trace(Profile::ODU, 500, 2);
    TraceStats stats = collectTraceStats(trace);
    std::string report = stats.report("ODU");
    EXPECT_NE(report.find("trace: ODU"), std::string::npos);
    EXPECT_NE(report.find("500"), std::string::npos);
    EXPECT_NE(report.find("TCP"), std::string::npos);
    EXPECT_NE(report.find("distinct flows"), std::string::npos);
}

/** Replays a pre-built packet vector. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<Packet> packets)
        : packets(std::move(packets))
    {
    }

    std::optional<Packet>
    next() override
    {
        if (index >= packets.size())
            return std::nullopt;
        return packets[index++];
    }

    std::string name() const override { return "vector"; }

  private:
    std::vector<Packet> packets;
    size_t index = 0;
};

TEST(TraceStats, FragmentTrainCountsAsOneFlow)
{
    // Regression: non-first fragments used to be "parsed" with
    // payload bytes as ports, minting one garbage flow per fragment
    // and inflating distinctFlows (and, downstream, the live top-K
    // flow table).  A 32-fragment train is one portless flow.
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0b000002;
    tuple.srcPort = 4242;
    tuple.dstPort = 53;
    tuple.proto = 17;
    std::vector<Packet> packets;
    for (uint16_t frag_off = 1; frag_off <= 32; frag_off++) {
        Packet frag;
        frag.bytes = buildIpv4Packet(
            tuple, 64, 64, static_cast<uint8_t>(frag_off));
        storeBe16(frag.bytes.data() + ipv4::offFlagsFrag,
                  static_cast<uint16_t>(0x2000 | frag_off));
        // Distinct payload bytes where the L4 ports would sit.
        storeBe16(frag.bytes.data() + ipv4::minHeaderLen,
                  static_cast<uint16_t>(frag_off * 7919));
        frag.wireLen = 64;
        packets.push_back(std::move(frag));
    }
    VectorTrace trace(std::move(packets));
    TraceStats stats = collectTraceStats(trace);
    EXPECT_EQ(stats.packets, 32u);
    EXPECT_EQ(stats.ipv4Packets, 32u);
    EXPECT_EQ(stats.distinctFlows, 1u);
}

} // namespace
