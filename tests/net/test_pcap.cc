/**
 * @file
 * pcap reader/writer tests: round trip, byte orders, link types,
 * truncation and corruption handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/byteorder.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"

namespace
{

using namespace pb;
using namespace pb::net;

Packet
makePacket(uint32_t src, uint64_t ts)
{
    FiveTuple tuple;
    tuple.src = src;
    tuple.dst = 0x08080808;
    tuple.srcPort = 1000;
    tuple.dstPort = 53;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 60);
    packet.wireLen = 60;
    packet.tsUsec = ts;
    return packet;
}

TEST(Pcap, WriteReadRoundTrip)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    std::vector<Packet> sent;
    for (int i = 0; i < 20; i++) {
        Packet packet =
            makePacket(0x0a000000u + static_cast<uint32_t>(i),
                       1'000'000ull * i + 7);
        writer.write(packet);
        sent.push_back(std::move(packet));
    }

    PcapReader reader(stream, "roundtrip");
    EXPECT_EQ(reader.linkType(), LinkType::Raw);
    for (int i = 0; i < 20; i++) {
        auto got = reader.next();
        ASSERT_TRUE(got) << "packet " << i;
        EXPECT_EQ(got->bytes, sent[i].bytes);
        EXPECT_EQ(got->tsUsec, sent[i].tsUsec);
        EXPECT_EQ(got->wireLen, sent[i].wireLen);
        EXPECT_EQ(got->l3Offset, 0);
    }
    EXPECT_FALSE(reader.next());
    EXPECT_FALSE(reader.next()) << "EOF must be sticky";
}

TEST(Pcap, EthernetLinkTypeSetsL3Offset)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Ethernet);
    Packet packet = makePacket(1, 0);
    // Prepend a fake Ethernet header.
    std::vector<uint8_t> framed(14, 0);
    framed[12] = 0x08;
    framed.insert(framed.end(), packet.bytes.begin(),
                  packet.bytes.end());
    packet.bytes = framed;
    packet.l3Offset = 14;
    writer.write(packet);

    PcapReader reader(stream);
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->l3Offset, 14);
    EXPECT_EQ(got->l3()[0], 0x45);
}

TEST(Pcap, ReadsByteSwappedFiles)
{
    // Hand-build a big-endian pcap file containing one 4-byte packet.
    std::string data;
    auto put32be = [&](uint32_t v) {
        uint8_t b[4];
        storeBe32(b, v);
        data.append(reinterpret_cast<char *>(b), 4);
    };
    auto put16be = [&](uint16_t v) {
        uint8_t b[2];
        storeBe16(b, v);
        data.append(reinterpret_cast<char *>(b), 2);
    };
    put32be(0xa1b2c3d4); // stored BE => reader sees swapped magic
    put16be(2);
    put16be(4);
    put32be(0);
    put32be(0);
    put32be(65535);
    put32be(101); // RAW
    put32be(12);  // ts_sec
    put32be(34);  // ts_usec
    put32be(4);   // incl_len
    put32be(4);   // orig_len
    data.append("\x45\x00\x00\x04", 4);

    std::stringstream stream(data);
    PcapReader reader(stream, "be");
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->tsUsec, 12u * 1'000'000 + 34);
    EXPECT_EQ(got->bytes.size(), 4u);
    EXPECT_FALSE(reader.next());
}

TEST(PcapErrors, EmptyFile)
{
    std::stringstream stream;
    EXPECT_THROW(PcapReader reader(stream), TraceFormatError);
}

TEST(PcapErrors, BadMagic)
{
    std::stringstream stream(std::string(24, 'x'));
    EXPECT_THROW(PcapReader reader(stream), TraceFormatError);
}

TEST(PcapErrors, NanosecondMagicRejectedWithClearError)
{
    std::string data(24, '\0');
    storeLe32(reinterpret_cast<uint8_t *>(data.data()), 0xa1b23c4d);
    std::stringstream stream(data);
    try {
        PcapReader reader(stream);
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find("nanosecond"),
                  std::string::npos);
    }
}

TEST(PcapErrors, UnsupportedLinkType)
{
    std::stringstream stream;
    {
        PcapWriter writer(stream, LinkType::Raw);
    }
    std::string data = stream.str();
    storeLe32(reinterpret_cast<uint8_t *>(data.data()) + 20, 105); // WiFi
    std::stringstream bad(data);
    EXPECT_THROW(PcapReader reader(bad), TraceFormatError);
}

TEST(PcapErrors, TruncatedRecordHeader)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    // Chop into the second record header.
    data.resize(data.size() - 50);
    data += std::string(8, '\0');
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW({ while (reader.next()) {} }, TraceFormatError);
}

TEST(PcapErrors, TruncatedRecordBody)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    data.resize(data.size() - 10); // lose part of the body
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(PcapErrors, ImplausibleRecordLength)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    // Record header starts at byte 24; incl_len at +8.
    storeLe32(reinterpret_cast<uint8_t *>(data.data()) + 24 + 8,
              0x7fffffff);
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(PcapErrors, MissingFileIsFatal)
{
    EXPECT_THROW(openPcapFile("/nonexistent/trace.pcap"), FatalError);
}

} // namespace
