/**
 * @file
 * pcap reader/writer tests: round trip, byte orders, link types,
 * truncation and corruption handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/byteorder.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"

namespace
{

using namespace pb;
using namespace pb::net;

Packet
makePacket(uint32_t src, uint64_t ts)
{
    FiveTuple tuple;
    tuple.src = src;
    tuple.dst = 0x08080808;
    tuple.srcPort = 1000;
    tuple.dstPort = 53;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 60);
    packet.wireLen = 60;
    packet.tsUsec = ts;
    return packet;
}

TEST(Pcap, WriteReadRoundTrip)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    std::vector<Packet> sent;
    for (int i = 0; i < 20; i++) {
        Packet packet =
            makePacket(0x0a000000u + static_cast<uint32_t>(i),
                       1'000'000ull * i + 7);
        writer.write(packet);
        sent.push_back(std::move(packet));
    }

    PcapReader reader(stream, "roundtrip");
    EXPECT_EQ(reader.linkType(), LinkType::Raw);
    for (int i = 0; i < 20; i++) {
        auto got = reader.next();
        ASSERT_TRUE(got) << "packet " << i;
        EXPECT_EQ(got->bytes, sent[i].bytes);
        EXPECT_EQ(got->tsUsec, sent[i].tsUsec);
        EXPECT_EQ(got->wireLen, sent[i].wireLen);
        EXPECT_EQ(got->l3Offset, 0);
    }
    EXPECT_FALSE(reader.next());
    EXPECT_FALSE(reader.next()) << "EOF must be sticky";
}

TEST(Pcap, EthernetLinkTypeSetsL3Offset)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Ethernet);
    Packet packet = makePacket(1, 0);
    // Prepend a fake Ethernet header.
    std::vector<uint8_t> framed(14, 0);
    framed[12] = 0x08;
    framed.insert(framed.end(), packet.bytes.begin(),
                  packet.bytes.end());
    packet.bytes = framed;
    packet.l3Offset = 14;
    writer.write(packet);

    PcapReader reader(stream);
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->l3Offset, 14);
    EXPECT_EQ(got->l3()[0], 0x45);
}

TEST(Pcap, ReadsByteSwappedFiles)
{
    // Hand-build a big-endian pcap file containing one 4-byte packet.
    std::string data;
    auto put32be = [&](uint32_t v) {
        uint8_t b[4];
        storeBe32(b, v);
        data.append(reinterpret_cast<char *>(b), 4);
    };
    auto put16be = [&](uint16_t v) {
        uint8_t b[2];
        storeBe16(b, v);
        data.append(reinterpret_cast<char *>(b), 2);
    };
    put32be(0xa1b2c3d4); // stored BE => reader sees swapped magic
    put16be(2);
    put16be(4);
    put32be(0);
    put32be(0);
    put32be(65535);
    put32be(101); // RAW
    put32be(12);  // ts_sec
    put32be(34);  // ts_usec
    put32be(4);   // incl_len
    put32be(4);   // orig_len
    data.append("\x45\x00\x00\x04", 4);

    std::stringstream stream(data);
    PcapReader reader(stream, "be");
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->tsUsec, 12u * 1'000'000 + 34);
    EXPECT_EQ(got->bytes.size(), 4u);
    EXPECT_FALSE(reader.next());
}

TEST(PcapErrors, EmptyFile)
{
    std::stringstream stream;
    EXPECT_THROW(PcapReader reader(stream), TraceFormatError);
}

TEST(PcapErrors, BadMagic)
{
    std::stringstream stream(std::string(24, 'x'));
    EXPECT_THROW(PcapReader reader(stream), TraceFormatError);
}

std::string
nanosFile(bool swapped)
{
    // Hand-build a nanosecond-magic pcap file with one 4-byte RAW
    // packet whose timestamp fraction is 1'500'000 ns.
    std::string data;
    auto put32 = [&](uint32_t v) {
        uint8_t b[4];
        swapped ? storeBe32(b, v) : storeLe32(b, v);
        data.append(reinterpret_cast<char *>(b), 4);
    };
    auto put16 = [&](uint16_t v) {
        uint8_t b[2];
        swapped ? storeBe16(b, v) : storeLe16(b, v);
        data.append(reinterpret_cast<char *>(b), 2);
    };
    put32(pcapMagicNanos);
    put16(2);
    put16(4);
    put32(0);
    put32(0);
    put32(65535);
    put32(101); // RAW
    put32(12);        // ts_sec
    put32(1'500'000); // ts fraction, in nanoseconds
    put32(4);         // incl_len
    put32(4);         // orig_len
    data.append("\x45\x00\x00\x04", 4);
    return data;
}

TEST(Pcap, NanosecondMagicScalesTimestamps)
{
    std::stringstream stream(nanosFile(false));
    PcapReader reader(stream, "nanos");
    EXPECT_TRUE(reader.nanosecond());
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->tsUsec, 12u * 1'000'000 + 1'500);
    EXPECT_EQ(got->bytes.size(), 4u);
    EXPECT_FALSE(reader.next());
}

TEST(Pcap, NanosecondMagicByteSwapped)
{
    std::stringstream stream(nanosFile(true));
    PcapReader reader(stream, "nanos-be");
    EXPECT_TRUE(reader.nanosecond());
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->tsUsec, 12u * 1'000'000 + 1'500);
}

TEST(Pcap, MicrosecondFilesAreNotNanosecond)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    PcapReader reader(stream);
    EXPECT_FALSE(reader.nanosecond());
}

TEST(PcapErrors, UnsupportedLinkType)
{
    std::stringstream stream;
    {
        PcapWriter writer(stream, LinkType::Raw);
    }
    std::string data = stream.str();
    storeLe32(reinterpret_cast<uint8_t *>(data.data()) + 20, 105); // WiFi
    std::stringstream bad(data);
    EXPECT_THROW(PcapReader reader(bad), TraceFormatError);
}

TEST(PcapErrors, TruncatedRecordHeader)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    // Chop into the second record header.
    data.resize(data.size() - 50);
    data += std::string(8, '\0');
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW({ while (reader.next()) {} }, TraceFormatError);
}

TEST(PcapErrors, TruncatedRecordBody)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    data.resize(data.size() - 10); // lose part of the body
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(PcapErrors, ImplausibleRecordLength)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    // Record header starts at byte 24; incl_len at +8.
    storeLe32(reinterpret_cast<uint8_t *>(data.data()) + 24 + 8,
              0x7fffffff);
    std::stringstream bad(data);
    PcapReader reader(bad);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

TEST(PcapErrors, MissingFileIsFatal)
{
    EXPECT_THROW(openPcapFile("/nonexistent/trace.pcap"), FatalError);
}

TEST(PcapErrors, BadStreamThrowsIoErrorNotFormatError)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    PcapReader reader(stream);
    // A broken stream (disk error, closed pipe) is an I/O failure;
    // it must never masquerade as a malformed record — not even
    // under Skip recovery.
    stream.setstate(std::ios::badbit);
    EXPECT_THROW(reader.next(), TraceIoError);
}

TEST(PcapRecovery, SkipCountsTruncatedBody)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    writer.write(makePacket(2, 1));
    std::string data = stream.str();
    data.resize(data.size() - 10); // chop into the second body
    std::stringstream bad(data);
    PcapReader reader(bad, "trunc", ReadRecovery::Skip);
    EXPECT_TRUE(reader.next());
    EXPECT_FALSE(reader.next()) << "partial record is end of trace";
    EXPECT_EQ(reader.malformedRecords(), 1u);
}

TEST(PcapRecovery, SkipCountsTruncatedRecordHeader)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    data += std::string(8, '\0'); // half a second record header
    std::stringstream bad(data);
    PcapReader reader(bad, "trunc-hdr", ReadRecovery::Skip);
    EXPECT_TRUE(reader.next());
    EXPECT_FALSE(reader.next());
    EXPECT_EQ(reader.malformedRecords(), 1u);
}

TEST(PcapRecovery, SkipCountsImplausibleRecordLength)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    writer.write(makePacket(2, 1));
    std::string data = stream.str();
    // Corrupt the first record's incl_len; the skip overshoots into
    // EOF, but the reader survives and counts the damage.
    storeLe32(reinterpret_cast<uint8_t *>(data.data()) + 24 + 8,
              0x7fffffff);
    std::stringstream bad(data);
    PcapReader reader(bad, "implausible", ReadRecovery::Skip);
    EXPECT_FALSE(reader.next());
    EXPECT_EQ(reader.malformedRecords(), 1u);
}

TEST(PcapRecovery, ZeroLengthRecordPassesThrough)
{
    // A zero-length record is *not* malformed at the trace layer: it
    // reads as an empty packet (and the next record is unaffected);
    // classifying it as unprocessable is the framework's job.
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    Packet empty;
    empty.tsUsec = 3;
    writer.write(empty);
    writer.write(makePacket(2, 1));
    PcapReader reader(stream, "zero-len", ReadRecovery::Skip);
    auto first = reader.next();
    ASSERT_TRUE(first);
    EXPECT_EQ(first->bytes.size(), 0u);
    EXPECT_EQ(first->l3Len(), 0u);
    auto second = reader.next();
    ASSERT_TRUE(second);
    EXPECT_EQ(second->bytes.size(), 60u);
    EXPECT_EQ(reader.malformedRecords(), 0u);
}

TEST(PcapRecovery, RuntEthernetRecordHasZeroL3Len)
{
    // incl_len < 14 on an Ethernet capture: the packet reads fine at
    // the trace layer but carries no L3 bytes; l3Len() must report 0
    // (not a 65-KiB underflow) so the framework faults it cleanly.
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Ethernet);
    Packet runt;
    runt.bytes.assign(6, 0xaa);
    runt.wireLen = 6;
    writer.write(runt);
    PcapReader reader(stream, "runt", ReadRecovery::Skip);
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->l3Offset, 14u);
    EXPECT_EQ(got->bytes.size(), 6u);
    EXPECT_EQ(got->l3Len(), 0u);
}

TEST(PcapRecovery, StrictStillThrows)
{
    std::stringstream stream;
    PcapWriter writer(stream, LinkType::Raw);
    writer.write(makePacket(1, 0));
    std::string data = stream.str();
    data.resize(data.size() - 10);
    std::stringstream bad(data);
    PcapReader reader(bad, "strict", ReadRecovery::Strict);
    EXPECT_THROW(reader.next(), TraceFormatError);
}

} // namespace
