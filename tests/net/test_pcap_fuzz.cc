/**
 * @file
 * Robustness fuzzing for the trace parsers: arbitrary byte blobs,
 * truncations, and bit-flipped valid files must produce typed
 * errors or clean EOF — never crashes, hangs, or unbounded reads.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"
#include "net/tsh.hh"

namespace
{

using namespace pb;
using namespace pb::net;

/** Consume a reader until EOF or error; bounded by construction. */
template <typename Reader>
void
drain(Reader &reader)
{
    for (int i = 0; i < 100000; i++) {
        if (!reader.next())
            return;
    }
    FAIL() << "reader produced an implausible number of packets";
}

TEST(PcapFuzz, RandomBlobsNeverCrash)
{
    Rng rng(1);
    for (int trial = 0; trial < 300; trial++) {
        size_t len = rng.below(512);
        std::string blob(len, '\0');
        for (auto &c : blob)
            c = static_cast<char>(rng.below(256));
        std::stringstream stream(blob);
        try {
            PcapReader reader(stream, "fuzz");
            drain(reader);
        } catch (const TraceFormatError &) {
            // expected for malformed input
        }
    }
}

TEST(PcapFuzz, TruncatedValidFilesNeverCrash)
{
    // Build a valid two-packet file, then try every truncation.
    std::stringstream valid;
    PcapWriter writer(valid, LinkType::Raw);
    FiveTuple tuple;
    tuple.src = 1;
    tuple.dst = 2;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40);
    writer.write(packet);
    writer.write(packet);
    std::string bytes = valid.str();

    for (size_t cut = 0; cut < bytes.size(); cut++) {
        std::stringstream stream(bytes.substr(0, cut));
        try {
            PcapReader reader(stream, "truncated");
            drain(reader);
        } catch (const TraceFormatError &) {
        }
    }
}

TEST(PcapFuzz, BitFlippedHeadersNeverCrash)
{
    std::stringstream valid;
    PcapWriter writer(valid, LinkType::Ethernet);
    Packet packet;
    packet.bytes = std::vector<uint8_t>(60, 0x42);
    packet.l3Offset = 14;
    writer.write(packet);
    std::string bytes = valid.str();

    Rng rng(7);
    for (int trial = 0; trial < 500; trial++) {
        std::string mutated = bytes;
        size_t pos = rng.below(static_cast<uint32_t>(mutated.size()));
        mutated[pos] ^= static_cast<char>(1u << rng.below(8));
        std::stringstream stream(mutated);
        try {
            PcapReader reader(stream, "flipped");
            drain(reader);
        } catch (const TraceFormatError &) {
        }
    }
}

TEST(TshFuzz, RandomBlobsNeverCrash)
{
    Rng rng(3);
    for (int trial = 0; trial < 300; trial++) {
        size_t len = rng.below(400);
        std::string blob(len, '\0');
        for (auto &c : blob)
            c = static_cast<char>(rng.below(256));
        std::stringstream stream(blob);
        TshReader reader(stream, "fuzz");
        try {
            drain(reader);
        } catch (const TraceFormatError &) {
        }
    }
}

} // namespace
