/**
 * @file
 * Anonymization tests: the prefix-preservation property for both TSA
 * and the Crypto-PAn-style baseline, determinism, and table shapes.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "anon/tsa.hh"
#include "common/bitops.hh"
#include "common/rng.hh"

namespace
{

using namespace pb;
using namespace pb::anon;

/**
 * Property: anonymization preserves prefixes *exactly* — the
 * anonymized forms share precisely as many leading bits as the
 * originals.
 */
template <typename Fn>
void
checkPrefixPreserving(Fn &&anonymize, uint32_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < 20'000; i++) {
        uint32_t a = rng.next();
        // Construct b sharing exactly k bits with a.
        unsigned k = rng.below(33);
        uint32_t b;
        if (k == 32) {
            b = a;
        } else {
            b = (a & prefixMask(k)) ^ (1u << (31 - k));
            b |= rng.next() & ~prefixMask(k + 1);
        }
        unsigned want = commonPrefixLen(a, b);
        unsigned got = commonPrefixLen(anonymize(a), anonymize(b));
        ASSERT_EQ(got, want)
            << std::hex << "a=" << a << " b=" << b;
    }
}

class TsaKeySweep : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(TsaKeySweep, PrefixPreserving)
{
    TsaAnonymizer tsa(GetParam());
    checkPrefixPreserving([&](uint32_t x) { return tsa.anonymize(x); },
                          GetParam() + 1);
}

TEST_P(TsaKeySweep, CryptoPanPrefixPreserving)
{
    CryptoPanPp pan(GetParam());
    checkPrefixPreserving([&](uint32_t x) { return pan.anonymize(x); },
                          GetParam() + 2);
}

INSTANTIATE_TEST_SUITE_P(Keys, TsaKeySweep,
                         ::testing::Values(0u, 1u, 0xbeefu,
                                           0xffffffffu));

TEST(Tsa, BijectiveOnSample)
{
    // Prefix preservation at k=32 already implies injectivity, but
    // check a dense range explicitly.
    TsaAnonymizer tsa(7);
    std::unordered_set<uint32_t> seen;
    for (uint32_t i = 0; i < 100'000; i++)
        ASSERT_TRUE(seen.insert(tsa.anonymize(0x0a000000 + i)).second);
}

TEST(Tsa, DeterministicPerKey)
{
    TsaAnonymizer a(123);
    TsaAnonymizer b(123);
    TsaAnonymizer c(124);
    int same = 0;
    for (uint32_t i = 0; i < 1000; i++) {
        uint32_t addr = mix32(i);
        EXPECT_EQ(a.anonymize(addr), b.anonymize(addr));
        if (a.anonymize(addr) == c.anonymize(addr))
            same++;
    }
    EXPECT_LE(same, 2);
}

TEST(Tsa, ActuallyAnonymizes)
{
    // Identity would be "prefix preserving" too; make sure a large
    // fraction of addresses change.
    TsaAnonymizer tsa(99);
    int unchanged = 0;
    for (uint32_t i = 0; i < 1000; i++) {
        uint32_t addr = mix32(i * 7 + 1);
        if (tsa.anonymize(addr) == addr)
            unchanged++;
    }
    EXPECT_LE(unchanged, 2);
}

TEST(Tsa, TableShapesMatchDesign)
{
    TsaAnonymizer tsa(1);
    EXPECT_EQ(tsa.topTable().size(), tsalayout::topEntries);
    EXPECT_EQ(tsa.subtree().size(), tsalayout::subtreeBytes);
    EXPECT_EQ(tsalayout::subtreeBytes, 8192u);
}

TEST(Tsa, SubtreeFlipsAreBalanced)
{
    // About half the flip bits should be set.
    TsaAnonymizer tsa(5);
    uint64_t ones = 0;
    for (uint8_t byte : tsa.subtree())
        ones += popCount(byte);
    double frac =
        static_cast<double>(ones) / tsalayout::subtreeBits;
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(Tsa, TopTableIsPrefixPreservingPermutation)
{
    TsaAnonymizer tsa(3);
    const auto &top = tsa.topTable();
    std::unordered_set<uint16_t> seen;
    for (uint32_t t = 0; t < tsalayout::topEntries; t++)
        ASSERT_TRUE(seen.insert(top[t]).second) << t;
    // Spot-check 16-bit prefix preservation within the table.
    Rng rng(9);
    for (int i = 0; i < 5000; i++) {
        uint16_t a = static_cast<uint16_t>(rng.below(65536));
        uint16_t b = static_cast<uint16_t>(rng.below(65536));
        unsigned want = commonPrefixLen(static_cast<uint32_t>(a) << 16,
                                        static_cast<uint32_t>(b) << 16);
        unsigned got = commonPrefixLen(
            static_cast<uint32_t>(top[a]) << 16,
            static_cast<uint32_t>(top[b]) << 16);
        if (want > 16)
            want = got = 16; // equal tops
        ASSERT_EQ(got >= 16 ? 16 : got, want);
    }
}

TEST(Tsa, MatchesSubtreeBitAccessor)
{
    // anonymize() must agree with the packed-table accessor the
    // NPE32 application uses.
    TsaAnonymizer tsa(17);
    Rng rng(4);
    for (int i = 0; i < 2000; i++) {
        uint32_t addr = rng.next();
        uint32_t anon_top = tsa.topTable()[addr >> 16];
        uint32_t bottom = addr & 0xffff;
        uint32_t anon_bottom = 0;
        uint32_t path = 0;
        for (unsigned level = 0; level < 16; level++) {
            uint32_t orig = (bottom >> (15 - level)) & 1;
            uint32_t flip = tsa.subtreeBit(level, path) ? 1 : 0;
            anon_bottom = (anon_bottom << 1) | (orig ^ flip);
            path = (path << 1) | orig;
        }
        EXPECT_EQ(tsa.anonymize(addr),
                  (anon_top << 16) | anon_bottom);
    }
}

TEST(Tsa, SharedSubtreeAcrossTops)
{
    // The "replicated subtree" design: two addresses with different
    // tops but identical bottoms anonymize their bottoms identically.
    TsaAnonymizer tsa(21);
    uint32_t a = (0x1234u << 16) | 0xabcd;
    uint32_t b = (0x9999u << 16) | 0xabcd;
    EXPECT_EQ(tsa.anonymize(a) & 0xffff, tsa.anonymize(b) & 0xffff);
}

} // namespace
