/**
 * @file
 * Disassembler tests, including an assemble/disassemble/reassemble
 * consistency property.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/inst.hh"

namespace
{

using namespace pb;
using namespace pb::isa;

TEST(Disasm, RegNames)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(1), "a0");
    EXPECT_EQ(regName(13), "sp");
    EXPECT_EQ(regName(14), "lr");
    EXPECT_EQ(regName(15), "at");
}

TEST(Disasm, RendersEachFormat)
{
    EXPECT_EQ(disassemble({Op::ADD, 5, 6, 7, 0}, 0),
              "add    t0, t1, t2");
    EXPECT_EQ(disassemble({Op::ADDI, 1, 1, 0, -4}, 0),
              "addi   a0, a0, -4");
    EXPECT_EQ(disassemble({Op::LW, 5, 1, 0, 8}, 0),
              "lw     t0, 8(a0)");
    EXPECT_EQ(disassemble({Op::SW, 5, 13, 0, -16}, 0),
              "sw     t0, -16(sp)");
    // Branch target rendered absolute: 0x100 + 4 + 2*4 = 0x10c.
    EXPECT_EQ(disassemble({Op::BEQ, 0, 5, 6, 2}, 0x100),
              "beq    t0, t1, 0x10c");
    EXPECT_EQ(disassemble({Op::J, 0, 0, 0, -1}, 0x100),
              "j      0x100");
    EXPECT_EQ(disassemble({Op::JR, 0, 14, 0, 0}, 0), "jr     lr");
    EXPECT_EQ(disassemble({Op::SYS, 0, 0, 0, 2}, 0), "sys    2");
    EXPECT_EQ(disassemble({Op::INVALID, 0, 0, 0, 0}, 0), "<invalid>");
}

TEST(Disasm, ProgramListingHasLabelsAndAddresses)
{
    Program prog = Assembler(0x1000).assemble(R"(
        main:
            addi t0, zero, 1
        loop:
            bnez t0, loop
            sys 0
    )");
    std::string listing = disassemble(prog);
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("loop:"), std::string::npos);
    EXPECT_NE(listing.find("00001000:"), std::string::npos);
    EXPECT_NE(listing.find("sys"), std::string::npos);
}

/**
 * Property: disassembling and reassembling a program yields identical
 * machine code (for the non-pseudo subset the disassembler emits).
 */
TEST(Disasm, ReassemblyRoundTrip)
{
    Program prog = Assembler(0x1000).assemble(R"(
        main:
            addi t0, zero, 10
            addi t1, zero, 0
        loop:
            add  t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            slli t1, t1, 2
            sys  0
    )");
    // Rebuild source from the raw disassembly of each word (branch
    // targets become absolute hex addresses, which the assembler's
    // expression parser accepts).
    std::string src;
    for (size_t i = 0; i < prog.words.size(); i++) {
        src += disassemble(decode(prog.words[i]),
                           prog.baseAddr + static_cast<uint32_t>(i) * 4);
        src += "\n";
    }
    Program back = Assembler(0x1000).assemble(src);
    EXPECT_EQ(back.words, prog.words);
}

} // namespace
