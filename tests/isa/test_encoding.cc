/**
 * @file
 * Encode/decode round-trip tests over the whole NPE32 opcode space.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/inst.hh"

namespace
{

using namespace pb;
using namespace pb::isa;

/** Build a field-legal random instruction for @p op. */
Inst
randomInst(Op op, Rng &rng)
{
    const OpInfo &info = opInfo(op);
    Inst inst;
    inst.op = op;
    switch (info.format) {
      case Format::RType:
        inst.rd = static_cast<uint8_t>(rng.below(16));
        inst.rs = static_cast<uint8_t>(rng.below(16));
        inst.rt = static_cast<uint8_t>(rng.below(16));
        break;
      case Format::IType:
        inst.rd = static_cast<uint8_t>(rng.below(16));
        if (op != Op::LUI)
            inst.rs = static_cast<uint8_t>(rng.below(16));
        if (op == Op::ADDI || op == Op::SLTI)
            inst.imm = static_cast<int32_t>(rng.below(65536)) - 32768;
        else if (op == Op::SLLI || op == Op::SRLI || op == Op::SRAI)
            inst.imm = static_cast<int32_t>(rng.below(32));
        else
            inst.imm = static_cast<int32_t>(rng.below(65536));
        break;
      case Format::Load:
      case Format::Store:
        inst.rd = static_cast<uint8_t>(rng.below(16));
        inst.rs = static_cast<uint8_t>(rng.below(16));
        inst.imm = static_cast<int32_t>(rng.below(65536)) - 32768;
        break;
      case Format::Branch:
        inst.rs = static_cast<uint8_t>(rng.below(16));
        inst.rt = static_cast<uint8_t>(rng.below(16));
        inst.imm = static_cast<int32_t>(rng.below(65536)) - 32768;
        break;
      case Format::Jump:
        inst.imm = static_cast<int32_t>(rng.below(1u << 24)) -
                   (1 << 23);
        break;
      case Format::JumpReg:
        inst.rd = static_cast<uint8_t>(rng.below(16));
        inst.rs = static_cast<uint8_t>(rng.below(16));
        break;
      case Format::Sys:
        inst.imm = static_cast<int32_t>(rng.below(65536));
        break;
      case Format::None:
        break;
    }
    return inst;
}

class EncodingRoundTrip : public ::testing::TestWithParam<Op>
{};

TEST_P(EncodingRoundTrip, DecodeOfEncodeIsIdentity)
{
    Rng rng(static_cast<uint32_t>(GetParam()) * 7919 + 3);
    for (int i = 0; i < 500; i++) {
        Inst inst = randomInst(GetParam(), rng);
        Inst back = decode(encode(inst));
        EXPECT_EQ(back, inst)
            << "op=" << static_cast<int>(GetParam()) << " iter=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, EncodingRoundTrip,
                         ::testing::ValuesIn(allOps),
                         [](const auto &info) {
                             return std::string(
                                 opInfo(info.param).mnemonic);
                         });

TEST(Encoding, InvalidOpcodeDecodesToInvalid)
{
    // 0x00 and 0xff opcode bytes are unassigned.
    EXPECT_EQ(decode(0x00000000u).op, Op::INVALID);
    EXPECT_EQ(decode(0xff000000u).op, Op::INVALID);
    EXPECT_EQ(decode(0x99000000u).op, Op::INVALID);
}

TEST(Encoding, OpInfoCoversAllOps)
{
    for (Op op : allOps) {
        const OpInfo &info = opInfo(op);
        EXPECT_EQ(info.op, op);
        EXPECT_NE(info.format, Format::None);
        EXPECT_FALSE(info.mnemonic.empty());
        // Mnemonic lookup inverts the table.
        EXPECT_EQ(opFromMnemonic(info.mnemonic), op);
    }
    EXPECT_EQ(opFromMnemonic("bogus"), Op::INVALID);
}

TEST(Encoding, SignedImmediatesSurvive)
{
    Inst inst{Op::ADDI, 3, 4, 0, -1};
    EXPECT_EQ(decode(encode(inst)).imm, -1);
    Inst branch{Op::BEQ, 0, 1, 2, -100};
    EXPECT_EQ(decode(encode(branch)).imm, -100);
    Inst jump{Op::J, 0, 0, 0, -(1 << 23)};
    EXPECT_EQ(decode(encode(jump)).imm, -(1 << 23));
}

TEST(Encoding, ZeroExtendedImmediatesSurvive)
{
    Inst inst{Op::ORI, 3, 4, 0, 0xffff};
    EXPECT_EQ(decode(encode(inst)).imm, 0xffff);
    Inst lui{Op::LUI, 5, 0, 0, 0xabcd};
    EXPECT_EQ(decode(encode(lui)).imm, 0xabcd);
}

} // namespace
