/**
 * @file
 * Assembler tests: syntax, labels, pseudo-instruction expansion,
 * expressions, and error reporting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/inst.hh"

namespace
{

using namespace pb;
using namespace pb::isa;

Program
asmOk(const std::string &src)
{
    return Assembler(0x1000).assemble(src, "test");
}

Inst
onlyInst(const std::string &src)
{
    Program prog = asmOk(src);
    EXPECT_EQ(prog.words.size(), 1u);
    return decode(prog.words[0]);
}

TEST(Assembler, BasicRType)
{
    Inst inst = onlyInst("add t0, t1, t2");
    EXPECT_EQ(inst.op, Op::ADD);
    EXPECT_EQ(inst.rd, 5);
    EXPECT_EQ(inst.rs, 6);
    EXPECT_EQ(inst.rt, 7);
}

TEST(Assembler, NumericRegisterNames)
{
    Inst inst = onlyInst("sub r1, r13, r15");
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.rs, 13);
    EXPECT_EQ(inst.rt, 15);
}

TEST(Assembler, ImmediateForms)
{
    EXPECT_EQ(onlyInst("addi a0, a0, -5").imm, -5);
    EXPECT_EQ(onlyInst("ori a0, a0, 0xffff").imm, 0xffff);
    EXPECT_EQ(onlyInst("slli a0, a0, 31").imm, 31);
    EXPECT_EQ(onlyInst("lui a0, 0x1234").imm, 0x1234);
}

TEST(Assembler, LoadStoreOperands)
{
    Inst lw = onlyInst("lw t0, 8(a0)");
    EXPECT_EQ(lw.op, Op::LW);
    EXPECT_EQ(lw.rd, 5);
    EXPECT_EQ(lw.rs, 1);
    EXPECT_EQ(lw.imm, 8);

    Inst sb = onlyInst("sb t1, -4(sp)");
    EXPECT_EQ(sb.op, Op::SB);
    EXPECT_EQ(sb.imm, -4);
    EXPECT_EQ(sb.rs, regSp);

    // Bare offset means base r0.
    Inst abs = onlyInst("lw t0, 100");
    EXPECT_EQ(abs.rs, regZero);
    EXPECT_EQ(abs.imm, 100);
}

TEST(Assembler, LabelsAndBranches)
{
    Program prog = asmOk(R"(
        main:
            addi t0, zero, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys  0
    )");
    EXPECT_EQ(prog.entry("main"), 0x1000u);
    EXPECT_EQ(prog.symbols.at("loop"), 0x1004u);
    // bnez expands to bne; target offset is -2 words (from 0x1008).
    Inst bne = decode(prog.words[2]);
    EXPECT_EQ(bne.op, Op::BNE);
    EXPECT_EQ(bne.imm, -2);
}

TEST(Assembler, ForwardReferences)
{
    Program prog = asmOk(R"(
        b end
        nop
        end: sys 0
    )");
    Inst b = decode(prog.words[0]);
    EXPECT_EQ(b.op, Op::BEQ);
    EXPECT_EQ(b.imm, 1);
}

TEST(Assembler, EquConstantsAndExpressions)
{
    Program prog = asmOk(R"(
        .equ BASE, 0x100
        .equ NODE_SIZE, 16
        .equ FIELD, BASE + NODE_SIZE - 4
        lw t0, FIELD(a0)
    )");
    Inst lw = decode(prog.words[0]);
    EXPECT_EQ(lw.imm, 0x100 + 16 - 4);
}

TEST(Assembler, LiExpansionSmall)
{
    // Fits simm16: single addi.
    Program prog = asmOk("li t0, -42");
    ASSERT_EQ(prog.words.size(), 1u);
    Inst inst = decode(prog.words[0]);
    EXPECT_EQ(inst.op, Op::ADDI);
    EXPECT_EQ(inst.imm, -42);
}

TEST(Assembler, LiExpansionUnsigned16)
{
    // Fits uimm16 but not simm16: single ori.
    Program prog = asmOk("li t0, 0xabcd");
    ASSERT_EQ(prog.words.size(), 1u);
    EXPECT_EQ(decode(prog.words[0]).op, Op::ORI);
}

TEST(Assembler, LiExpansionLarge)
{
    Program prog = asmOk("li t0, 0x12345678");
    ASSERT_EQ(prog.words.size(), 2u);
    Inst lui = decode(prog.words[0]);
    Inst ori = decode(prog.words[1]);
    EXPECT_EQ(lui.op, Op::LUI);
    EXPECT_EQ(lui.imm, 0x1234);
    EXPECT_EQ(ori.op, Op::ORI);
    EXPECT_EQ(ori.imm, 0x5678);
}

TEST(Assembler, LaAlwaysTwoWords)
{
    Program prog = asmOk(R"(
        la t0, target
        target: nop
    )");
    ASSERT_EQ(prog.words.size(), 3u);
    // target is at 0x1008.
    EXPECT_EQ(decode(prog.words[0]).imm, 0x0);
    EXPECT_EQ(decode(prog.words[1]).imm, 0x1008);
}

TEST(Assembler, PseudoInstructions)
{
    EXPECT_EQ(onlyInst("nop").op, Op::ADD);
    Inst move = onlyInst("move t0, a0");
    EXPECT_EQ(move.op, Op::ADD);
    EXPECT_EQ(move.rt, regZero);
    EXPECT_EQ(onlyInst("ret").op, Op::JR);
    EXPECT_EQ(onlyInst("ret").rs, regLr);
    Inst subi = onlyInst("subi t0, t0, 5");
    EXPECT_EQ(subi.op, Op::ADDI);
    EXPECT_EQ(subi.imm, -5);
}

TEST(Assembler, SwappedComparisonPseudos)
{
    Program prog = asmOk(R"(
        x: bgt t0, t1, x
        ble t0, t1, x
        bgtu t0, t1, x
        bleu t0, t1, x
    )");
    Inst bgt = decode(prog.words[0]);
    EXPECT_EQ(bgt.op, Op::BLT);
    EXPECT_EQ(bgt.rs, 6); // t1
    EXPECT_EQ(bgt.rt, 5); // t0
    EXPECT_EQ(decode(prog.words[1]).op, Op::BGE);
    EXPECT_EQ(decode(prog.words[2]).op, Op::BLTU);
    EXPECT_EQ(decode(prog.words[3]).op, Op::BGEU);
}

TEST(Assembler, CallAndJumps)
{
    Program prog = asmOk(R"(
        main:
            call fn
            sys 0
        fn:
            ret
    )");
    Inst jal = decode(prog.words[0]);
    EXPECT_EQ(jal.op, Op::JAL);
    EXPECT_EQ(jal.imm, 1);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program prog = asmOk(R"(
        # full line comment
        nop  # trailing comment
        ; alternative comment style
        nop  ; also trailing
    )");
    EXPECT_EQ(prog.words.size(), 2u);
}

TEST(Assembler, WordDirective)
{
    Program prog = asmOk(".word 0xdeadbeef");
    ASSERT_EQ(prog.words.size(), 1u);
    EXPECT_EQ(prog.words[0], 0xdeadbeefu);
}

TEST(Assembler, MultipleLabelsSameAddress)
{
    Program prog = asmOk("a: b: nop");
    EXPECT_EQ(prog.symbols.at("a"), prog.symbols.at("b"));
}

TEST(Assembler, SourceLineTracking)
{
    Program prog = asmOk("nop\nnop\n\nnop");
    ASSERT_EQ(prog.lines.size(), 3u);
    EXPECT_EQ(prog.lines[0], 1);
    EXPECT_EQ(prog.lines[1], 2);
    EXPECT_EQ(prog.lines[2], 4);
}

// ---- error cases ----

TEST(AssemblerErrors, UnknownInstruction)
{
    EXPECT_THROW(asmOk("frobnicate t0, t1"), AsmError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(asmOk("b nowhere"), AsmError);
    EXPECT_THROW(asmOk("li t0, UNDEF_EQU + nop_not_label"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(asmOk("x: nop\nx: nop"), AsmError);
}

TEST(AssemblerErrors, ImmediateOutOfRange)
{
    EXPECT_THROW(asmOk("addi t0, t0, 40000"), AsmError);
    EXPECT_THROW(asmOk("addi t0, t0, -40000"), AsmError);
    EXPECT_THROW(asmOk("ori t0, t0, 0x10000"), AsmError);
    EXPECT_THROW(asmOk("slli t0, t0, 32"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(asmOk("add t0, t1"), AsmError);
    EXPECT_THROW(asmOk("sys"), AsmError);
    EXPECT_THROW(asmOk("jr"), AsmError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(asmOk("add q0, t1, t2"), AsmError);
    EXPECT_THROW(asmOk("add r16, t1, t2"), AsmError);
}

TEST(AssemblerErrors, ReportsLineNumber)
{
    try {
        asmOk("nop\nnop\nbogus t0\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line, 3);
        EXPECT_NE(std::string(e.what()).find("test:3"),
                  std::string::npos);
    }
}

TEST(AssemblerErrors, MisalignedBaseRejected)
{
    EXPECT_THROW(Assembler(0x1002), FatalError);
}

TEST(AssemblerErrors, BranchOutOfRange)
{
    // Branch to a label > 32767 words away.
    std::string src = "start: nop\n";
    for (int i = 0; i < 33000; i++)
        src += "nop\n";
    src += "b start\n";
    EXPECT_THROW(asmOk(src), AsmError);
}

} // namespace
