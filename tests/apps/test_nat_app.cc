/**
 * @file
 * Differential tests for the NAT application against the host
 * binding table.
 */

#include <gtest/gtest.h>

#include "apps/nat_app.hh"
#include "core/packetbench.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::apps;
using namespace pb::core;
using namespace pb::net;

Packet
tcpPacket(uint32_t src, uint16_t sport, uint32_t dst = 0x08080808)
{
    FiveTuple tuple;
    tuple.src = src;
    tuple.dst = dst;
    tuple.srcPort = sport;
    tuple.dstPort = 443;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 60);
    packet.wireLen = 60;
    return packet;
}

TEST(NatApp, RewritesSourceAddressAndPort)
{
    NatApp app(0xc6336401, 20000, 64);
    PacketBench bench(app);
    Packet packet = tcpPacket(0x0a000001, 1234);
    PacketOutcome outcome = bench.processPacket(packet);
    ASSERT_EQ(outcome.verdict, isa::SysCode::Send);

    Ipv4ConstView ip(packet.l3());
    EXPECT_EQ(ip.src(), 0xc6336401u);
    EXPECT_EQ(loadBe16(packet.l3() + 20), 20000);
    EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 20));
    EXPECT_EQ(app.simBindingCount(bench.memory()), 1u);
}

TEST(NatApp, StableBindingPerFlowFreshPortPerFlow)
{
    NatApp app(0xc6336401, 20000, 64);
    PacketBench bench(app);

    Packet a1 = tcpPacket(0x0a000001, 1111);
    Packet a2 = tcpPacket(0x0a000001, 1111, 0x09090909); // same src
    Packet b = tcpPacket(0x0a000002, 1111);              // new host
    bench.processPacket(a1);
    bench.processPacket(a2);
    bench.processPacket(b);

    EXPECT_EQ(loadBe16(a1.l3() + 20), 20000);
    EXPECT_EQ(loadBe16(a2.l3() + 20), 20000)
        << "same binding for the same internal (addr, port, proto)";
    EXPECT_EQ(loadBe16(b.l3() + 20), 20001);
    EXPECT_EQ(app.simBindingCount(bench.memory()), 2u);
}

TEST(NatApp, MatchesHostTableOnRealTraffic)
{
    NatApp app(0xc0000201, 30000, 1024);
    PacketBench bench(app);
    flow::NatTable host(0xc0000201, 30000);

    SyntheticTrace trace(Profile::ODU, 2000, 77);
    while (auto packet = trace.next()) {
        Packet expected = *packet;
        host.translate(expected);
        PacketOutcome outcome = bench.processPacket(*packet);
        ASSERT_EQ(outcome.verdict, isa::SysCode::Send);
        ASSERT_EQ(packet->bytes, expected.bytes);
    }
    EXPECT_EQ(app.simBindingCount(bench.memory()), host.bindings());
    EXPECT_GT(host.bindings(), 50u);
}

TEST(NatApp, NonTcpUdpPassesThroughUnchanged)
{
    NatApp app;
    PacketBench bench(app);
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 1; // ICMP
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 84);
    Packet orig = packet;
    PacketOutcome outcome = bench.processPacket(packet);
    EXPECT_EQ(outcome.verdict, isa::SysCode::Send);
    EXPECT_EQ(packet.bytes, orig.bytes);
    EXPECT_EQ(app.simBindingCount(bench.memory()), 0u);
}

TEST(NatApp, PortsExhaustionWrapsBenignly)
{
    // Allocate many bindings; ports increment monotonically from
    // the base (16-bit wrap is the caller's concern; we only check
    // determinism here).
    NatApp app(0xc6336401, 65530, 64);
    PacketBench bench(app);
    for (uint32_t i = 0; i < 10; i++) {
        Packet packet = tcpPacket(0x0a000100 + i, 1000);
        bench.processPacket(packet);
        EXPECT_EQ(loadBe16(packet.l3() + 20),
                  static_cast<uint16_t>(65530 + i));
    }
    EXPECT_EQ(app.simBindingCount(bench.memory()), 10u);
}

TEST(NatApp, RejectsBadBucketCount)
{
    EXPECT_THROW(NatApp(1, 1, 100), FatalError);
}

TEST(NatApp, CostSitsInTheHeaderAppBand)
{
    // NAT is a header app: cost must be flow-classification-like,
    // far below the payload apps.
    NatApp app;
    PacketBench bench(app);
    SyntheticTrace trace(Profile::MRA, 300, 5);
    double insts = 0;
    uint32_t n = 0;
    while (auto packet = trace.next()) {
        insts += static_cast<double>(
            bench.processPacket(*packet).stats.instCount);
        n++;
    }
    EXPECT_GT(insts / n, 50.0);
    EXPECT_LT(insts / n, 400.0);
}

} // namespace
