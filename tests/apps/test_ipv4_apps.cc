/**
 * @file
 * Differential tests for the forwarding applications: the NPE32
 * programs must agree bit-exactly with the host reference data
 * structures on every packet, and must implement the RFC1812 steps
 * (checksum verify, TTL handling) correctly.
 */

#include <gtest/gtest.h>

#include "apps/ipv4_radix.hh"
#include "apps/ipv4_trie.hh"
#include "common/strutil.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/scramble.hh"
#include "net/tracegen.hh"
#include "route/linear.hh"

namespace
{

using namespace pb;
using namespace pb::apps;
using namespace pb::core;
using namespace pb::net;

Packet
makeTestPacket(uint32_t dst, uint8_t ttl = 64)
{
    FiveTuple tuple;
    tuple.src = 0x0a012345;
    tuple.dst = dst;
    tuple.srcPort = 1234;
    tuple.dstPort = 80;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40, ttl);
    packet.wireLen = 40;
    return packet;
}

/** Expected host-side transform of a forwarded packet. */
std::vector<uint8_t>
hostForward(const Packet &packet)
{
    std::vector<uint8_t> out = packet.bytes;
    Ipv4View ip(out.data() + packet.l3Offset);
    ip.setTtl(ip.ttl() - 1);
    fillIpv4Checksum(out.data() + packet.l3Offset, 20);
    return out;
}

template <typename App, typename LookupFn>
void
runForwardingDifferential(App &app, LookupFn &&host_lookup,
                          uint32_t packets)
{
    BenchConfig cfg;
    cfg.scramble = true; // the paper's preprocessing
    PacketBench bench(app, cfg);
    AddressScrambler scrambler(cfg.scrambleKey);

    SyntheticTrace trace(Profile::MRA, packets, 42);
    uint32_t sent = 0;
    uint32_t dropped = 0;
    while (auto packet = trace.next()) {
        Ipv4ConstView orig(packet->l3());
        uint32_t scrambled_dst = scrambler.scramble(orig.dst());
        Packet expected_packet = *packet;
        scrambler.scramblePacket(expected_packet);
        std::vector<uint8_t> expected_bytes =
            hostForward(expected_packet);
        ForwardCheck check = rfc1812Check(expected_packet);

        PacketOutcome outcome = bench.processPacket(*packet);
        uint32_t want_hop = host_lookup(scrambled_dst);
        if (check != ForwardCheck::Ok ||
            want_hop == route::noRoute) {
            EXPECT_EQ(outcome.verdict, isa::SysCode::Drop)
                << formatIpv4(scrambled_dst) << " check "
                << static_cast<int>(check);
            dropped++;
        } else {
            ASSERT_EQ(outcome.verdict, isa::SysCode::Send)
                << formatIpv4(scrambled_dst);
            EXPECT_EQ(outcome.outInterface, want_hop)
                << formatIpv4(scrambled_dst);
            // TTL decremented, checksum recomputed, bit-exact.
            EXPECT_EQ(packet->bytes, expected_bytes);
            sent++;
        }
    }
    // The core table has /8 coverage: everything not filtered by the
    // RFC1812 checks (~7% of scrambled traffic) should forward.
    EXPECT_EQ(sent + dropped, packets);
    EXPECT_GT(sent, packets * 85 / 100);
    EXPECT_GT(dropped, packets / 100)
        << "some traffic must exercise the drop paths";
}

TEST(Ipv4TrieApp, AgreesWithHostTrieOnRealTraffic)
{
    auto table = route::generateCoreTable(1000, 5);
    Ipv4TrieApp app(table);
    runForwardingDifferential(
        app, [&](uint32_t a) { return app.trie().lookup(a); }, 1500);
}

TEST(Ipv4TrieApp, AgreesWithLinearScan)
{
    auto table = route::generateSmallTable(160, 9);
    Ipv4TrieApp app(table);
    route::LinearLpm linear(table);
    runForwardingDifferential(
        app, [&](uint32_t a) { return linear.lookup(a); }, 800);
}

TEST(Ipv4RadixApp, AgreesWithHostRadixOnRealTraffic)
{
    auto table = route::generateCoreTable(1000, 5);
    Ipv4RadixApp app(table);
    runForwardingDifferential(
        app, [&](uint32_t a) { return app.radix().lookup(a); }, 1000);
}

TEST(Ipv4RadixApp, AgreesWithLinearScan)
{
    auto table = route::generateCoreTable(300, 3);
    Ipv4RadixApp app(table);
    route::LinearLpm linear(table);
    runForwardingDifferential(
        app, [&](uint32_t a) { return linear.lookup(a); }, 600);
}

TEST(ForwardingApps, RadixAndTrieAgreeWithEachOther)
{
    auto table = route::generateCoreTable(500, 21);
    Ipv4RadixApp radix_app(table);
    Ipv4TrieApp trie_app(table);
    PacketBench radix_bench(radix_app);
    PacketBench trie_bench(trie_app);

    SyntheticTrace trace(Profile::COS, 500, 3);
    while (auto packet = trace.next()) {
        Packet copy = *packet;
        PacketOutcome a = radix_bench.processPacket(*packet);
        PacketOutcome b = trie_bench.processPacket(copy);
        EXPECT_EQ(a.verdict, b.verdict);
        if (a.verdict == isa::SysCode::Send) {
            EXPECT_EQ(a.outInterface, b.outInterface);
            EXPECT_EQ(packet->bytes, copy.bytes);
        }
    }
}

class ForwardingEdgeCases
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<core::Application>
    makeApp()
    {
        auto table = route::generateSmallTable(64, 8);
        if (std::string(GetParam()) == "radix")
            return std::make_unique<Ipv4RadixApp>(table);
        return std::make_unique<Ipv4TrieApp>(table);
    }
};

TEST_P(ForwardingEdgeCases, TtlOneIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0x0a000001, 1);
    EXPECT_EQ(bench.processPacket(packet).verdict, isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, TtlZeroIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0x0a000001, 0);
    EXPECT_EQ(bench.processPacket(packet).verdict, isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, BadChecksumIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0x0a000001);
    packet.bytes[ipv4::offChecksum] ^= 0x55;
    EXPECT_EQ(bench.processPacket(packet).verdict, isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, MartianSourceIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    for (uint32_t src : {0x00123456u, 0x7f000001u}) {
        Packet packet = makeTestPacket(0x0a000001);
        Ipv4View ip(packet.l3());
        ip.setSrc(src);
        fillIpv4Checksum(packet.l3(), 20);
        EXPECT_EQ(bench.processPacket(packet).verdict,
                  isa::SysCode::Drop)
            << formatIpv4(src);
    }
}

TEST_P(ForwardingEdgeCases, MulticastDestIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0xe0000001); // 224.0.0.1
    EXPECT_EQ(bench.processPacket(packet).verdict,
              isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, NonIpv4IsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0x0a000001);
    packet.bytes[0] = 0x65; // version 6
    fillIpv4Checksum(packet.bytes.data(), 20);
    EXPECT_EQ(bench.processPacket(packet).verdict, isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, ShortIhlIsDropped)
{
    auto app = makeApp();
    PacketBench bench(*app);
    Packet packet = makeTestPacket(0x0a000001);
    packet.bytes[0] = 0x44; // IHL 4 < 5
    fillIpv4Checksum(packet.bytes.data(), 20);
    EXPECT_EQ(bench.processPacket(packet).verdict, isa::SysCode::Drop);
}

TEST_P(ForwardingEdgeCases, BadChecksumStaysDroppedUnderScramble)
{
    // Regression: scramblePacket used to recompute the checksum
    // after rewriting addresses, which *repaired* a checksum that
    // arrived broken — the simulated RFC 1812 verify then passed and
    // the corrupt packet was forwarded.  With the fix the scrambler
    // leaves an invalid checksum invalid, so the app must drop.
    auto app = makeApp();
    BenchConfig cfg;
    cfg.scramble = true;
    PacketBench bench(*app, cfg);
    for (int i = 0; i < 16; i++) {
        Packet packet = makeTestPacket(0x0a000001 + i);
        packet.bytes[ipv4::offChecksum] ^= 0x55;
        EXPECT_EQ(bench.processPacket(packet).verdict,
                  isa::SysCode::Drop)
            << i;
    }
    // Control: the same packets with intact checksums are not
    // checksum-dropped (scrambling keeps the sum valid via the
    // RFC 1624 incremental update).
    for (int i = 0; i < 16; i++) {
        Packet packet = makeTestPacket(0x0a000001 + i);
        Packet expected = packet;
        AddressScrambler(cfg.scrambleKey).scramblePacket(expected);
        PacketOutcome outcome = bench.processPacket(packet);
        EXPECT_EQ(outcome.verdict,
                  rfc1812Check(expected) == ForwardCheck::Ok
                      ? outcome.verdict // route miss may still drop
                      : isa::SysCode::Drop)
            << i;
        EXPECT_TRUE(verifyIpv4Checksum(packet.l3(), 20)) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ForwardingEdgeCases,
                         ::testing::Values("radix", "trie"));

TEST(ForwardingApps, ComplexityOrderingMatchesPaper)
{
    // Paper Table II: radix is roughly an order of magnitude more
    // expensive than trie, both with near-constant packet-memory
    // access counts (Table III).
    auto big_table = route::generateCoreTable(8192, 1);
    auto small_table = route::generateSmallTable(160, 1);
    Ipv4RadixApp radix_app(big_table);
    Ipv4TrieApp trie_app(small_table);
    BenchConfig cfg;
    cfg.scramble = true;
    PacketBench radix_bench(radix_app, cfg);
    PacketBench trie_bench(trie_app, cfg);

    SyntheticTrace t1(Profile::MRA, 300, 2);
    SyntheticTrace t2(Profile::MRA, 300, 2);
    auto radix_out = radix_bench.run(t1, 300);
    auto trie_out = trie_bench.run(t2, 300);

    auto mean_insts = [](const std::vector<PacketOutcome> &outs) {
        double total = 0;
        for (const auto &o : outs)
            total += static_cast<double>(o.stats.instCount);
        return total / static_cast<double>(outs.size());
    };
    double radix_mean = mean_insts(radix_out);
    double trie_mean = mean_insts(trie_out);
    EXPECT_GT(radix_mean, trie_mean * 3.0);
    EXPECT_GT(radix_mean, 600.0);
    EXPECT_LT(trie_mean, 400.0);

    // Non-packet memory: radix dominated by stack+node traffic.
    auto mean_nonpkt = [](const std::vector<PacketOutcome> &outs) {
        double total = 0;
        for (const auto &o : outs)
            total += o.stats.nonPacketAccesses();
        return total / static_cast<double>(outs.size());
    };
    EXPECT_GT(mean_nonpkt(radix_out), mean_nonpkt(trie_out) * 8.0);
}

} // namespace
