/**
 * @file
 * Cross-profile / cross-seed application sweeps: every application
 * must behave correctly over every trace profile (including the
 * Ethernet-framed LAN trace) and for multiple generated routing
 * tables, and the framework must produce identical results whether
 * packets arrive directly or through a trace-file round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/experiments.hh"
#include "apps/ipv4_trie.hh"
#include "apps/nat_app.hh"
#include "apps/tsa_app.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/tsh.hh"
#include "route/linear.hh"

namespace
{

using namespace pb;
using namespace pb::an;
using namespace pb::core;
using namespace pb::net;

/** (profile, app) sweep: runs must complete and look sane. */
class ProfileAppMatrix
    : public ::testing::TestWithParam<std::tuple<Profile, AppKind>>
{};

TEST_P(ProfileAppMatrix, RunsCleanlyWithSaneStats)
{
    auto [profile, kind] = GetParam();
    ExperimentConfig cfg;
    cfg.coreTablePrefixes = 2048;
    AppRun run = runApp(kind, profile, 300, cfg);
    ASSERT_EQ(run.stats.size(), 300u);

    double insts = run.meanInsts();
    EXPECT_GT(insts, 5.0);
    EXPECT_LT(insts, 20'000.0);
    // Unique instructions never exceed the program size, and the
    // instruction count never falls below the unique count.
    for (const auto &stats : run.stats) {
        EXPECT_GE(stats.instCount, stats.uniqueInstCount);
        EXPECT_GT(stats.instCount, 0u);
    }
    // Every app touches data memory except pure pass-through cases.
    EXPECT_GT(run.instMemoryBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProfileAppMatrix,
    ::testing::Combine(::testing::ValuesIn(net::allProfiles),
                       ::testing::ValuesIn(extendedAppKinds)),
    [](const auto &info) {
        return std::string(
                   net::profileInfo(std::get<0>(info.param)).name) +
               "_" +
               [](std::string title) {
                   for (char &c : title) {
                       if (!isalnum(static_cast<unsigned char>(c)))
                           c = '_';
                   }
                   return title;
               }(appTitle(std::get<1>(info.param)));
    });

/** Forwarding correctness across several generated tables. */
class TrieSeedSweep : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(TrieSeedSweep, AgreesWithLinearScan)
{
    uint32_t seed = GetParam();
    auto table = route::generateCoreTable(512 << (seed % 3), seed);
    apps::Ipv4TrieApp app(table);
    route::LinearLpm linear(table);
    BenchConfig cfg;
    cfg.scramble = true;
    PacketBench bench(app, cfg);
    AddressScrambler scrambler(cfg.scrambleKey);

    SyntheticTrace trace(Profile::COS, 400, seed + 100);
    while (auto packet = trace.next()) {
        Ipv4ConstView ip(packet->l3());
        uint32_t dst = scrambler.scramble(ip.dst());
        Packet copy = *packet;
        scrambler.scramblePacket(copy);
        ForwardCheck check = rfc1812Check(copy);
        PacketOutcome outcome = bench.processPacket(*packet);
        if (check != ForwardCheck::Ok ||
            linear.lookup(dst) == route::noRoute) {
            ASSERT_EQ(outcome.verdict, isa::SysCode::Drop);
        } else {
            ASSERT_EQ(outcome.verdict, isa::SysCode::Send);
            ASSERT_EQ(outcome.outInterface, linear.lookup(dst));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieSeedSweep,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(TraceRoundTripIntegration, TshPreservesAppBehavior)
{
    // Write a synthetic trace out as TSH, read it back, and verify
    // the TSA app anonymizes the reread packets identically to the
    // originals (TSH keeps exactly the header bytes TSA needs).
    std::stringstream file;
    {
        TshWriter writer(file);
        SyntheticTrace trace(Profile::ODU, 200, 9);
        while (auto packet = trace.next()) {
            // TSH keeps 36 header bytes; our packets qualify.
            writer.write(*packet);
        }
    }

    apps::TsaApp direct_app(0x77);
    apps::TsaApp reread_app(0x77);
    PacketBench direct(direct_app);
    PacketBench reread(reread_app);

    SyntheticTrace original(Profile::ODU, 200, 9);
    TshReader reader(file, "roundtrip");
    uint32_t packets = 0;
    while (auto orig = original.next()) {
        auto back = reader.next();
        ASSERT_TRUE(back);
        direct.processPacket(*orig);
        reread.processPacket(*back);
        // Anonymized source/destination must agree.
        Ipv4ConstView a(orig->l3());
        Ipv4ConstView b(back->l3());
        ASSERT_EQ(a.src(), b.src());
        ASSERT_EQ(a.dst(), b.dst());
        packets++;
    }
    EXPECT_EQ(packets, 200u);
    EXPECT_FALSE(reader.next());
}

TEST(TraceRoundTripIntegration, NatDeterministicAcrossRuns)
{
    // Binding allocation must be a pure function of the packet
    // sequence: two independent machines given the same trace end
    // with identical tables and outputs.
    apps::NatApp app1(0xc6336401, 40000, 256);
    apps::NatApp app2(0xc6336401, 40000, 256);
    PacketBench bench1(app1);
    PacketBench bench2(app2);
    SyntheticTrace t1(Profile::MRA, 400, 3);
    SyntheticTrace t2(Profile::MRA, 400, 3);
    while (auto p1 = t1.next()) {
        auto p2 = t2.next();
        bench1.processPacket(*p1);
        bench2.processPacket(*p2);
        ASSERT_EQ(p1->bytes, p2->bytes);
    }
    EXPECT_EQ(app1.simBindingCount(bench1.memory()),
              app2.simBindingCount(bench2.memory()));
}

} // namespace
