/**
 * @file
 * Disassemble/reassemble round-trip over every real application
 * program: the disassembly of each app must reassemble to identical
 * machine code, and its block structure must be stable.  This
 * cross-checks the assembler, disassembler, and encoder against each
 * other on full-size production programs.
 */

#include <gtest/gtest.h>

#include "analysis/experiments.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "sim/bblock.hh"

namespace
{

using namespace pb;
using namespace pb::an;

class AppProgramRoundTrip : public ::testing::TestWithParam<AppKind>
{};

TEST_P(AppProgramRoundTrip, DisassemblyReassemblesIdentically)
{
    ExperimentConfig cfg;
    cfg.coreTablePrefixes = 512; // table size is irrelevant here
    auto app = makeApp(GetParam(), cfg);
    sim::Memory mem;
    isa::Program prog = app->setup(mem);
    ASSERT_FALSE(prog.words.empty());

    // Raw per-word disassembly (no pseudo-ops, absolute targets).
    std::string src;
    for (size_t i = 0; i < prog.words.size(); i++) {
        uint32_t addr =
            prog.baseAddr + static_cast<uint32_t>(i) * 4;
        src += isa::disassemble(isa::decode(prog.words[i]), addr);
        src += "\n";
    }
    isa::Program back =
        isa::Assembler(prog.baseAddr).assemble(src, "roundtrip");
    ASSERT_EQ(back.words.size(), prog.words.size());
    for (size_t i = 0; i < prog.words.size(); i++) {
        EXPECT_EQ(back.words[i], prog.words[i])
            << "word " << i << ": "
            << isa::disassemble(isa::decode(prog.words[i]),
                                prog.baseAddr +
                                    static_cast<uint32_t>(i) * 4);
    }
}

TEST_P(AppProgramRoundTrip, BlockStructureIsSane)
{
    ExperimentConfig cfg;
    cfg.coreTablePrefixes = 512;
    auto app = makeApp(GetParam(), cfg);
    sim::Memory mem;
    isa::Program prog = app->setup(mem);
    sim::BlockMap blocks(prog);

    EXPECT_GE(blocks.numBlocks(), 2u);
    uint32_t insts = 0;
    for (const auto &block : blocks.blocks()) {
        EXPECT_GT(block.numInsts, 0u);
        insts += block.numInsts;
    }
    EXPECT_EQ(insts, prog.words.size());
    // Every program must define main and end every path in SYS —
    // check at least one SYS exists.
    bool has_sys = false;
    for (uint32_t word : prog.words) {
        if (isa::decode(word).op == isa::Op::SYS)
            has_sys = true;
    }
    EXPECT_TRUE(has_sys);
    EXPECT_TRUE(prog.hasSymbol("main"));
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppProgramRoundTrip,
    ::testing::ValuesIn(extendedAppKinds), [](const auto &info) {
        std::string title = appTitle(info.param);
        for (char &c : title) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return title;
    });

} // namespace
