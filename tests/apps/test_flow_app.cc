/**
 * @file
 * Differential tests for the Flow Classification application: the
 * simulated flow table must agree with the host reference exactly —
 * flow count, per-flow packet and byte counters.
 */

#include <gtest/gtest.h>

#include "apps/flow_class.hh"
#include "core/packetbench.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::apps;
using namespace pb::core;
using namespace pb::net;

TEST(FlowClassApp, MatchesHostTableOnRealTraffic)
{
    FlowClassApp app(1024);
    PacketBench bench(app);
    flow::FlowTable host(1024);

    SyntheticTrace trace(Profile::ODU, 3000, 11);
    while (auto packet = trace.next()) {
        FiveTuple tuple;
        ASSERT_TRUE(parseFiveTuple(*packet, tuple));
        // The application reads the IP total length as the byte count.
        Ipv4ConstView ip(packet->l3());
        host.update(tuple, ip.totalLen());
        PacketOutcome outcome = bench.processPacket(*packet);
        EXPECT_EQ(outcome.verdict, isa::SysCode::Send);
    }

    EXPECT_EQ(app.simFlowCount(bench.memory()), host.numFlows());
    for (const auto &[tuple, stats] : host.all()) {
        flow::FlowStats sim = app.simLookup(bench.memory(), tuple);
        EXPECT_EQ(sim.packets, stats.packets);
        EXPECT_EQ(sim.bytes, stats.bytes);
    }
}

TEST(FlowClassApp, LanProfileToo)
{
    FlowClassApp app(256);
    PacketBench bench(app);
    flow::FlowTable host(256);
    SyntheticTrace trace(Profile::LAN, 2000, 5);
    while (auto packet = trace.next()) {
        FiveTuple tuple;
        ASSERT_TRUE(parseFiveTuple(*packet, tuple));
        Ipv4ConstView ip(packet->l3());
        host.update(tuple, ip.totalLen());
        bench.processPacket(*packet);
    }
    EXPECT_EQ(app.simFlowCount(bench.memory()), host.numFlows());
    for (const auto &[tuple, stats] : host.all()) {
        flow::FlowStats sim = app.simLookup(bench.memory(), tuple);
        EXPECT_EQ(sim.packets, stats.packets);
        EXPECT_EQ(sim.bytes, stats.bytes);
    }
}

TEST(FlowClassApp, NewFlowCostsMoreThanUpdateOnAverage)
{
    // Paper Table V: the two dominant cases are "existing flow"
    // (cheap update) and "new flow" (more expensive insert path,
    // 212 vs 156 instructions in the paper).  Compare the average
    // cost of the two paths over a realistic trace.
    FlowClassApp app(1024);
    PacketBench bench(app);
    flow::FlowTable host(1024);

    double new_total = 0;
    double new_n = 0;
    double update_total = 0;
    double update_n = 0;
    SyntheticTrace trace(Profile::MRA, 3000, 17);
    while (auto packet = trace.next()) {
        FiveTuple tuple;
        ASSERT_TRUE(parseFiveTuple(*packet, tuple));
        Ipv4ConstView ip(packet->l3());
        bool is_new = host.update(tuple, ip.totalLen());
        uint64_t cost =
            bench.processPacket(*packet).stats.instCount;
        if (is_new) {
            new_total += static_cast<double>(cost);
            new_n++;
        } else {
            update_total += static_cast<double>(cost);
            update_n++;
        }
    }
    ASSERT_GT(new_n, 50.0);
    ASSERT_GT(update_n, 500.0);
    EXPECT_GT(new_total / new_n, update_total / update_n + 5.0);
    EXPECT_LT(update_total / update_n, 400.0);
}

TEST(FlowClassApp, IcmpPacketsFormPortlessFlows)
{
    FlowClassApp app(64);
    PacketBench bench(app);
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 1; // ICMP
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 84);
    bench.processPacket(packet);
    bench.processPacket(packet);
    EXPECT_EQ(app.simFlowCount(bench.memory()), 1u);
    flow::FlowStats stats = app.simLookup(bench.memory(), tuple);
    EXPECT_EQ(stats.packets, 2u);
    EXPECT_EQ(stats.bytes, 168u);
}

TEST(FlowClassApp, NonIpv4IsDropped)
{
    FlowClassApp app(64);
    PacketBench bench(app);
    Packet junk;
    junk.bytes = std::vector<uint8_t>(40, 0);
    junk.bytes[0] = 0x60;
    EXPECT_EQ(bench.processPacket(junk).verdict, isa::SysCode::Drop);
    EXPECT_EQ(app.simFlowCount(bench.memory()), 0u);
}

TEST(FlowClassApp, RejectsBadBucketCount)
{
    EXPECT_THROW(FlowClassApp(1000), FatalError);
}

TEST(FlowClassApp, PacketMemoryAccessesNearConstant)
{
    // Paper Fig. 4: packet-memory accesses barely vary per packet.
    FlowClassApp app(1024);
    PacketBench bench(app);
    SyntheticTrace trace(Profile::MRA, 400, 7);
    uint32_t lo = UINT32_MAX;
    uint32_t hi = 0;
    while (auto packet = trace.next()) {
        PacketOutcome outcome = bench.processPacket(*packet);
        lo = std::min(lo, outcome.stats.packetAccesses());
        hi = std::max(hi, outcome.stats.packetAccesses());
    }
    EXPECT_LE(hi - lo, 6u);
}

} // namespace
