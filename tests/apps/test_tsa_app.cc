/**
 * @file
 * Differential tests for the TSA application: anonymized addresses
 * must match the host anonymizer bit-exactly, prefix preservation
 * must hold end to end, and the header records must be collected.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/tsa_app.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::apps;
using namespace pb::core;
using namespace pb::net;

TEST(TsaApp, MatchesHostAnonymizerOnRealTraffic)
{
    TsaApp app(0x1111);
    PacketBench bench(app);
    SyntheticTrace trace(Profile::COS, 1000, 13);
    uint32_t processed = 0;
    while (auto packet = trace.next()) {
        Ipv4ConstView before(packet->l3());
        uint32_t want_src = app.anonymizer().anonymize(before.src());
        uint32_t want_dst = app.anonymizer().anonymize(before.dst());
        PacketOutcome outcome = bench.processPacket(*packet);
        ASSERT_EQ(outcome.verdict, isa::SysCode::Send);
        Ipv4ConstView after(packet->l3());
        ASSERT_EQ(after.src(), want_src);
        ASSERT_EQ(after.dst(), want_dst);
        processed++;
    }
    EXPECT_EQ(app.simRecordCount(bench.memory()), processed);
}

TEST(TsaApp, EndToEndPrefixPreservation)
{
    // Process pairs of packets whose destinations share a known
    // prefix; the anonymized destinations must share exactly it.
    TsaApp app(0x2222);
    PacketBench bench(app);
    Rng rng(3);
    for (int i = 0; i < 200; i++) {
        uint32_t a = rng.next();
        unsigned k = rng.below(32);
        // Flip exactly bit k: the pair shares precisely k bits.
        uint32_t b = a ^ (1u << (31 - k));

        FiveTuple tuple;
        tuple.src = 0x0a000001;
        tuple.proto = 17;
        tuple.dst = a;
        Packet pa;
        pa.bytes = buildIpv4Packet(tuple, 40);
        tuple.dst = b;
        Packet pb_;
        pb_.bytes = buildIpv4Packet(tuple, 40);

        bench.processPacket(pa);
        bench.processPacket(pb_);
        Ipv4ConstView va(pa.l3());
        Ipv4ConstView vb(pb_.l3());
        ASSERT_EQ(commonPrefixLen(va.dst(), vb.dst()), k)
            << std::hex << a << " vs " << b;
    }
}

TEST(TsaApp, CollectsHeaderRecordsByProtocol)
{
    TsaApp app;
    PacketBench bench(app);

    auto run_proto = [&](uint8_t proto) {
        FiveTuple tuple;
        tuple.src = 0x01010101;
        tuple.dst = 0x02020202;
        tuple.srcPort = proto == 1 ? 0 : 1000;
        tuple.dstPort = proto == 1 ? 0 : 2000;
        tuple.proto = proto;
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 84);
        bench.processPacket(packet);
        return packet;
    };

    Packet tcp = run_proto(6);
    Packet udp = run_proto(17);
    Packet icmp = run_proto(1);

    ASSERT_EQ(app.simRecordCount(bench.memory()), 3u);
    // TCP keeps 16 L4 bytes, UDP 8, other 4 (paper: "layer 3 and
    // layer 4 headers are collected").
    EXPECT_EQ(app.simRecordLen(bench.memory(), 0), 36u);
    EXPECT_EQ(app.simRecordLen(bench.memory(), 1), 28u);
    EXPECT_EQ(app.simRecordLen(bench.memory(), 2), 24u);

    // The record holds the *anonymized* header: compare with the
    // post-processing packet bytes.
    auto rec = app.simRecordData(bench.memory(), 0);
    ASSERT_EQ(rec.size(), 36u);
    EXPECT_TRUE(std::equal(rec.begin(), rec.end(), tcp.bytes.begin()));
    auto rec_udp = app.simRecordData(bench.memory(), 1);
    EXPECT_TRUE(std::equal(rec_udp.begin(), rec_udp.end(),
                           udp.bytes.begin()));
    auto rec_icmp = app.simRecordData(bench.memory(), 2);
    EXPECT_TRUE(std::equal(rec_icmp.begin(), rec_icmp.end(),
                           icmp.bytes.begin()));
}

TEST(TsaApp, DeterministicAcrossInstances)
{
    TsaApp app1(0x4242);
    TsaApp app2(0x4242);
    PacketBench bench1(app1);
    PacketBench bench2(app2);
    SyntheticTrace t1(Profile::MRA, 50, 1);
    SyntheticTrace t2(Profile::MRA, 50, 1);
    while (auto p1 = t1.next()) {
        auto p2 = t2.next();
        bench1.processPacket(*p1);
        bench2.processPacket(*p2);
        EXPECT_EQ(p1->bytes, p2->bytes);
    }
}

TEST(TsaApp, ProcessingIsNearlyConstantCost)
{
    // Paper: TSA is strictly linear; Table V shows ~84% of packets
    // at one instruction count with tiny spread.
    TsaApp app;
    PacketBench bench(app);
    SyntheticTrace trace(Profile::MRA, 500, 3);
    std::map<uint64_t, uint32_t> histogram;
    while (auto packet = trace.next()) {
        PacketOutcome outcome = bench.processPacket(*packet);
        histogram[outcome.stats.instCount]++;
    }
    // Few distinct counts (one per protocol path).
    EXPECT_LE(histogram.size(), 4u);
    uint32_t top = 0;
    for (auto [count, n] : histogram)
        top = std::max(top, n);
    EXPECT_GT(top, 350u) << "one case must dominate";
}

TEST(TsaApp, NonIpv4IsDropped)
{
    TsaApp app;
    PacketBench bench(app);
    Packet junk;
    junk.bytes = std::vector<uint8_t>(40, 0);
    junk.bytes[0] = 0x60;
    EXPECT_EQ(bench.processPacket(junk).verdict, isa::SysCode::Drop);
    EXPECT_EQ(app.simRecordCount(bench.memory()), 0u);
}

} // namespace
