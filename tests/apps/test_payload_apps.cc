/**
 * @file
 * Differential tests for the payload-processing applications (XTEA
 * encryption and CRC-32): the simulated programs must agree
 * bit-exactly with the host references, and their cost must scale
 * with payload size (the defining PPA property).
 */

#include <gtest/gtest.h>

#include "apps/crc_app.hh"
#include "apps/xtea_app.hh"
#include "common/hash.hh"
#include "core/packetbench.hh"
#include "net/ipv4.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::apps;
using namespace pb::core;
using namespace pb::net;

Packet
sizedPacket(uint16_t total_len, uint8_t fill = 0xa5)
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.srcPort = 5;
    tuple.dstPort = 6;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, total_len, 64, fill);
    packet.wireLen = total_len;
    return packet;
}

TEST(XteaApp, MatchesHostCipherOnRealTraffic)
{
    XteaApp app;
    PacketBench bench(app);
    SyntheticTrace trace(Profile::MRA, 500, 21);
    while (auto packet = trace.next()) {
        Packet expected = *packet;
        app.referenceProcess(expected);
        PacketOutcome outcome = bench.processPacket(*packet);
        ASSERT_EQ(outcome.verdict, isa::SysCode::Send);
        ASSERT_EQ(packet->bytes, expected.bytes);
    }
}

TEST(XteaApp, HeaderLeftIntactPayloadChanged)
{
    XteaApp app;
    PacketBench bench(app);
    Packet packet = sizedPacket(60);
    Packet orig = packet;
    bench.processPacket(packet);
    // IP header untouched.
    EXPECT_TRUE(std::equal(packet.bytes.begin(),
                           packet.bytes.begin() + 20,
                           orig.bytes.begin()));
    // Payload encrypted.
    EXPECT_FALSE(std::equal(packet.bytes.begin() + 20,
                            packet.bytes.end(),
                            orig.bytes.begin() + 20));
    // And decryptable back to the original.
    app.cipher().decryptBuffer(packet.bytes.data() + 20,
                               packet.bytes.size() - 20);
    EXPECT_EQ(packet.bytes, orig.bytes);
}

TEST(XteaApp, CostScalesWithPayloadSize)
{
    // The PPA property: instructions grow linearly with payload.
    XteaApp app;
    PacketBench bench(app);
    uint64_t insts_small;
    uint64_t insts_large;
    {
        Packet packet = sizedPacket(28 + 8); // one block
        insts_small = bench.processPacket(packet).stats.instCount;
    }
    {
        Packet packet = sizedPacket(28 + 64); // eight blocks
        insts_large = bench.processPacket(packet).stats.instCount;
    }
    double per_block =
        static_cast<double>(insts_large - insts_small) / 7.0;
    EXPECT_GT(per_block, 500.0) << "XTEA block is ~1k instructions";
    EXPECT_LT(per_block, 2000.0);
    // Far heavier than any header app on large packets.
    EXPECT_GT(insts_large, 5000u);
}

TEST(XteaApp, NonIpv4Dropped)
{
    XteaApp app;
    PacketBench bench(app);
    Packet junk;
    junk.bytes = std::vector<uint8_t>(40, 0x61);
    EXPECT_EQ(bench.processPacket(junk).verdict, isa::SysCode::Drop);
}

TEST(CrcApp, MatchesHostCrcOnRealTraffic)
{
    CrcApp app;
    PacketBench bench(app);
    SyntheticTrace trace(Profile::COS, 500, 31);
    while (auto packet = trace.next()) {
        uint32_t want = crc32(packet->l3(), packet->l3Len());
        PacketOutcome outcome = bench.processPacket(*packet);
        ASSERT_EQ(outcome.verdict, isa::SysCode::Send);
        ASSERT_EQ(app.simResult(bench.memory()), want);
    }
}

TEST(CrcApp, KnownVector)
{
    // CRC-32("123456789") = 0xcbf43926 — fed through the simulator.
    CrcApp app;
    PacketBench bench(app);
    Packet packet;
    packet.bytes = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    bench.processPacket(packet);
    EXPECT_EQ(app.simResult(bench.memory()), 0xcbf43926u);
}

TEST(CrcApp, CostScalesWithPacketSize)
{
    CrcApp app;
    PacketBench bench(app);
    Packet small = sizedPacket(40);
    Packet large = sizedPacket(90);
    uint64_t insts_small =
        bench.processPacket(small).stats.instCount;
    uint64_t insts_large =
        bench.processPacket(large).stats.instCount;
    double per_byte =
        static_cast<double>(insts_large - insts_small) / 50.0;
    EXPECT_NEAR(per_byte, 13.0, 3.0)
        << "table-driven CRC is ~13 instructions per byte";
}

TEST(CrcApp, DoesNotModifyThePacket)
{
    CrcApp app;
    PacketBench bench(app);
    Packet packet = sizedPacket(64);
    Packet orig = packet;
    bench.processPacket(packet);
    EXPECT_EQ(packet.bytes, orig.bytes);
}

} // namespace
