/**
 * @file
 * Per-packet fault isolation tests: fault policies, engine
 * cleanliness after a fault, quarantine capture, the pb.faults.*
 * accounting invariant, and serial/parallel equivalence on a
 * corrupted trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/flow_class.hh"
#include "common/byteorder.hh"
#include "core/multicore.hh"
#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/faultinject.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"
#include "sim/simerror.hh"

namespace
{

using namespace pb;
using namespace pb::core;
using namespace pb::net;

/**
 * Loads an address from the first packet word and dereferences it:
 * a packet-controlled wild load.  Good packets carry a mapped
 * address; bad packets fault inside the handler.
 */
class WildLoadApp : public Application
{
  public:
    std::string name() const override { return "wild-load"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        mem.write32(sim::layout::dataBase, 0x1234);
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    lw  t0, 0(a0)
    lw  t1, 0(t0)
    li  a1, 1
    sys 1
)");
    }
};

/** Handler that faults on every packet (wild load from address 0). */
class AlwaysFaultApp : public Application
{
  public:
    std::string name() const override { return "always-fault"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    lw  t0, 0(zero)
    sys 2
)");
    }
};

/** Handler that never terminates (budget faults). */
class SpinApp : public Application
{
  public:
    std::string name() const override { return "spin"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase)
            .assemble("main: b main\n");
    }
};

/** Raw packet whose first word is @p addr (WildLoadApp's target). */
Packet
pointerPacket(uint32_t addr)
{
    Packet packet;
    packet.bytes.assign(40, 0);
    storeLe32(packet.bytes.data(), addr);
    packet.wireLen = 40;
    return packet;
}

Packet
ipv4Packet()
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.srcPort = 1000;
    tuple.dstPort = 53;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 60);
    packet.wireLen = 60;
    return packet;
}

TEST(FaultPolicy, AbortPreservesThrowingBehavior)
{
    WildLoadApp app;
    PacketBench bench(app); // default policy: Abort
    Packet bad = pointerPacket(0xeeeeeee0);
    EXPECT_THROW(bench.processPacket(bad), sim::SimError);

    Packet empty;
    EXPECT_THROW(bench.processPacket(empty), FatalError);
}

TEST(FaultPolicy, DropRecordsSimFaultAndContinues)
{
    WildLoadApp app;
    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    PacketBench bench(app, cfg);

    Packet good = pointerPacket(sim::layout::dataBase);
    PacketOutcome ok = bench.processPacket(good);
    EXPECT_FALSE(ok.faulted());
    EXPECT_EQ(ok.verdict, isa::SysCode::Send);
    EXPECT_EQ(ok.stats.instCount, 4u);

    Packet bad = pointerPacket(0xeeeeeee0);
    PacketOutcome faulted = bench.processPacket(bad);
    EXPECT_TRUE(faulted.faulted());
    EXPECT_EQ(faulted.fault, FaultKind::SimFault);
    EXPECT_EQ(faulted.verdict, isa::SysCode::Drop);
    EXPECT_FALSE(faulted.faultMessage.empty());
    // The handler faulted on its second instruction (the observer
    // sees an instruction before it traps); partial work is
    // accounted truthfully.
    EXPECT_EQ(faulted.stats.instCount, 2u);

    // The engine is clean: the next good packet behaves exactly as
    // if the faulting packet had never existed.
    PacketOutcome after = bench.processPacket(good);
    EXPECT_FALSE(after.faulted());
    EXPECT_EQ(after.verdict, isa::SysCode::Send);
    EXPECT_EQ(after.stats.instCount, 4u);
    EXPECT_EQ(bench.packetsProcessed(), 3u)
        << "faulted packets still count as processed";
}

TEST(FaultPolicy, DropClassifiesMalformedPackets)
{
    WildLoadApp app;
    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    PacketBench bench(app, cfg);

    Packet empty;
    PacketOutcome no_l3 = bench.processPacket(empty);
    EXPECT_EQ(no_l3.fault, FaultKind::MalformedPacket);
    EXPECT_EQ(no_l3.stats.instCount, 0u);

    Packet oversized;
    oversized.bytes.resize(sim::layout::packetSize + 1, 0xee);
    PacketOutcome too_big = bench.processPacket(oversized);
    EXPECT_EQ(too_big.fault, FaultKind::MalformedPacket);

    // Runt Ethernet frame: capture shorter than the link header.
    Packet runt;
    runt.bytes.resize(6, 0xaa);
    runt.l3Offset = 14;
    PacketOutcome runt_out = bench.processPacket(runt);
    EXPECT_EQ(runt_out.fault, FaultKind::MalformedPacket);

    // The engine still processes good packets afterwards.
    Packet good = pointerPacket(sim::layout::dataBase);
    EXPECT_FALSE(bench.processPacket(good).faulted());
}

TEST(FaultPolicy, BudgetExhaustionIsItsOwnKind)
{
    SpinApp app;
    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    cfg.instBudget = 10'000;
    PacketBench bench(app, cfg);
    Packet packet = pointerPacket(sim::layout::dataBase);
    PacketOutcome outcome = bench.processPacket(packet);
    EXPECT_EQ(outcome.fault, FaultKind::BudgetExceeded);
    // The burned budget is real simulated work and is accounted.
    EXPECT_EQ(outcome.stats.instCount, 10'000u);
}

TEST(FaultPolicy, MetricsHoldPacketAccountingInvariant)
{
    obs::defaultRegistry().reset();
    WildLoadApp app;
    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Drop;
    PacketBench bench(app, cfg);

    Packet good = pointerPacket(sim::layout::dataBase);
    Packet bad = pointerPacket(0xeeeeeee0);
    Packet empty;
    bench.processPacket(good);
    bench.processPacket(bad);
    bench.processPacket(empty);
    bench.processPacket(good);

    obs::Registry &reg = obs::defaultRegistry();
    EXPECT_EQ(reg.counter("pb.faults.total").value(), 2u);
    EXPECT_EQ(reg.counter("pb.faults.sim").value(), 1u);
    EXPECT_EQ(reg.counter("pb.faults.malformed").value(), 1u);
    EXPECT_EQ(reg.counter("pb.faults.budget").value(), 0u);
    // pb.packets == pb.sent + pb.dropped + pb.faults.total
    EXPECT_EQ(reg.counter("pb.packets").value(),
              reg.counter("pb.sent").value() +
                  reg.counter("pb.dropped").value() +
                  reg.counter("pb.faults.total").value());
}

TEST(FaultPolicy, QuarantineCapturesPacketByteIdentical)
{
    WildLoadApp app;
    std::stringstream captured;
    PcapWriter pcap(captured, LinkType::Raw);
    QuarantineSink quarantine(pcap);

    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Quarantine;
    cfg.quarantine = &quarantine;
    PacketBench bench(app, cfg);

    Packet good = pointerPacket(sim::layout::dataBase);
    Packet bad = pointerPacket(0xeeeeeee0);
    bench.processPacket(good);
    PacketOutcome outcome = bench.processPacket(bad);
    EXPECT_TRUE(outcome.faulted());
    EXPECT_EQ(quarantine.quarantined(), 1u);

    std::stringstream replay(captured.str());
    PcapReader reader(replay, "quarantine");
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->bytes, bad.bytes);
    EXPECT_FALSE(reader.next());
}

TEST(FaultPolicy, QuarantineWithScrambleCapturesTraceBytes)
{
    // Scrambling rewrites addresses before the handler runs; the
    // quarantine must still hold the packet as the trace delivered
    // it, so the fault reproduces from the file alone.
    AlwaysFaultApp app;
    std::stringstream captured;
    PcapWriter pcap(captured, LinkType::Raw);
    QuarantineSink quarantine(pcap);

    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Quarantine;
    cfg.quarantine = &quarantine;
    cfg.scramble = true;
    PacketBench bench(app, cfg);

    Packet packet = ipv4Packet();
    std::vector<uint8_t> original = packet.bytes;
    PacketOutcome outcome = bench.processPacket(packet);
    EXPECT_EQ(outcome.fault, FaultKind::SimFault);

    std::stringstream replay(captured.str());
    PcapReader reader(replay, "quarantine");
    auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->bytes, original)
        << "quarantine must capture pre-scramble bytes";
}

TEST(FaultPolicy, QuarantineWithoutSinkDegradesToDrop)
{
    WildLoadApp app;
    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Quarantine;
    PacketBench bench(app, cfg);
    Packet bad = pointerPacket(0xeeeeeee0);
    PacketOutcome outcome = bench.processPacket(bad);
    EXPECT_TRUE(outcome.faulted());
    Packet good = pointerPacket(sim::layout::dataBase);
    EXPECT_FALSE(bench.processPacket(good).faulted());
}

TEST(FaultPolicy, NamesAreStable)
{
    EXPECT_STREQ(faultKindName(FaultKind::None), "none");
    EXPECT_STREQ(faultKindName(FaultKind::MalformedPacket),
                 "malformed-packet");
    EXPECT_STREQ(faultKindName(FaultKind::SimFault), "sim-fault");
    EXPECT_STREQ(faultKindName(FaultKind::BudgetExceeded),
                 "budget-exceeded");
    EXPECT_STREQ(faultPolicyName(FaultPolicy::Abort), "abort");
    EXPECT_STREQ(faultPolicyName(FaultPolicy::Drop), "drop");
    EXPECT_STREQ(faultPolicyName(FaultPolicy::Quarantine),
                 "quarantine");
}

TEST(MultiCoreFaults, SerialMatchesParallelOnCorruptedTrace)
{
    // The acceptance gate for the parallel path: a worker records a
    // faulting packet as an outcome instead of poisoning the run,
    // and per-engine totals stay bit-identical to the serial
    // reference.
    auto factory = [] {
        return std::make_unique<apps::FlowClassApp>(256);
    };
    FaultInjectConfig inject;
    inject.period = 10;
    inject.seed = 7;
    inject.bitFlips = false;
    inject.headerCorruption = false; // hard faults only

    BenchConfig serial_cfg;
    serial_cfg.faultPolicy = FaultPolicy::Drop;
    MultiCoreBench serial_cores(factory, 4, serial_cfg);
    SyntheticTrace serial_trace(Profile::MRA, 400, 3);
    FaultInjectingTraceSource serial_source(serial_trace, inject);
    MultiCoreResult serial = serial_cores.run(serial_source, 400);

    BenchConfig par_cfg = serial_cfg;
    par_cfg.parallel = true;
    par_cfg.dispatchBatch = 16;
    MultiCoreBench par_cores(factory, 4, par_cfg);
    SyntheticTrace par_trace(Profile::MRA, 400, 3);
    FaultInjectingTraceSource par_source(par_trace, inject);
    MultiCoreResult parallel = par_cores.run(par_source, 400);

    EXPECT_EQ(serial.totalPackets, 400u);
    EXPECT_EQ(serial.totalFaults, serial_source.injectedCount());
    EXPECT_GT(serial.totalFaults, 0u);
    ASSERT_EQ(serial.engines.size(), parallel.engines.size());
    for (size_t e = 0; e < serial.engines.size(); e++) {
        EXPECT_EQ(serial.engines[e].packets,
                  parallel.engines[e].packets)
            << "engine " << e;
        EXPECT_EQ(serial.engines[e].instructions,
                  parallel.engines[e].instructions)
            << "engine " << e;
        EXPECT_EQ(serial.engines[e].faults, parallel.engines[e].faults)
            << "engine " << e;
    }
}

/** Replays a fixed packet vector (for hand-built fault mixes). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<Packet> packets_)
        : packets(std::move(packets_))
    {}

    std::optional<Packet>
    next() override
    {
        if (pos >= packets.size())
            return std::nullopt;
        return packets[pos++];
    }

    std::string name() const override { return "vector"; }

  private:
    std::vector<Packet> packets;
    size_t pos = 0;
};

TEST(MultiCoreFaults, ParallelEnginesShareOneQuarantine)
{
    auto factory = [] { return std::make_unique<WildLoadApp>(); };
    std::stringstream captured;
    PcapWriter pcap(captured, LinkType::Raw);
    QuarantineSink quarantine(pcap);

    BenchConfig cfg;
    cfg.faultPolicy = FaultPolicy::Quarantine;
    cfg.quarantine = &quarantine;
    cfg.parallel = true;
    cfg.dispatchBatch = 4;
    MultiCoreBench cores(factory, 4, cfg);

    // Interleave good and bad pointer packets; the workers
    // quarantine concurrently into the one shared sink.
    std::vector<Packet> packets;
    uint32_t bad_count = 0;
    for (int i = 0; i < 40; i++) {
        bool bad = i % 5 == 0;
        packets.push_back(pointerPacket(
            bad ? 0xeeeeeee0 : sim::layout::dataBase));
        if (bad)
            bad_count++;
    }
    VectorSource source(std::move(packets));
    MultiCoreResult res = cores.run(source, 40);
    EXPECT_EQ(quarantine.quarantined(), bad_count);
    EXPECT_EQ(res.totalFaults, bad_count);

    // Every quarantined capture is one of the injected bad packets.
    std::stringstream replay(captured.str());
    PcapReader reader(replay, "quarantine");
    uint32_t replayed = 0;
    Packet bad = pointerPacket(0xeeeeeee0);
    while (auto got = reader.next()) {
        EXPECT_EQ(got->bytes, bad.bytes);
        replayed++;
    }
    EXPECT_EQ(replayed, bad_count);
}

} // namespace
