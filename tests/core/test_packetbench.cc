/**
 * @file
 * Framework tests: selective accounting boundaries, scrambling,
 * trace-driven runs with an output sink, and failure handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/flow_class.hh"
#include "apps/ipv4_trie.hh"
#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/ipv4.hh"
#include "net/pcap.hh"
#include "net/tracegen.hh"

namespace
{

using namespace pb;
using namespace pb::core;
using namespace pb::net;

/** Minimal application: counts packets in a data word, then sends. */
class CountingApp : public Application
{
  public:
    std::string name() const override { return "counting"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        mem.write32(sim::layout::dataBase, 0);
        std::string src = strprintf(".equ COUNTER, 0x%08x\n",
                                    sim::layout::dataBase);
        src += R"(
main:
    li  t0, COUNTER
    lw  t1, 0(t0)
    addi t1, t1, 1
    sw  t1, 0(t0)
    li  a1, 7
    sys 1
)";
        return isa::Assembler(sim::layout::textBase).assemble(src);
    }
};

/** Application whose handler never terminates. */
class SpinApp : public Application
{
  public:
    std::string name() const override { return "spin"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase)
            .assemble("main: b main\n");
    }
};

Packet
simplePacket()
{
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 17;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 40);
    packet.wireLen = 40;
    return packet;
}

TEST(PacketBench, RunsHandlerPerPacket)
{
    CountingApp app;
    PacketBench bench(app);
    Packet packet = simplePacket();
    for (int i = 0; i < 5; i++) {
        PacketOutcome outcome = bench.processPacket(packet);
        EXPECT_EQ(outcome.verdict, isa::SysCode::Send);
        EXPECT_EQ(outcome.outInterface, 7u);
        EXPECT_EQ(outcome.stats.instCount, 7u);
    }
    EXPECT_EQ(bench.memory().read32(sim::layout::dataBase), 5u);
    EXPECT_EQ(bench.packetsProcessed(), 5u);
}

TEST(PacketBench, PacketMemoryCarriesNoStaleBytesAcrossPackets)
{
    // Regression: the framework used to zero only the first 2 KiB of
    // the 64 KiB packet region, so a large packet's tail stayed
    // visible to every later (smaller) packet's application.
    CountingApp app;
    PacketBench bench(app);

    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0a000002;
    tuple.proto = 17;
    Packet big;
    big.bytes = buildIpv4Packet(tuple, 3000, 64, 0xAB);
    big.wireLen = 3000;
    bench.processPacket(big);
    // The big packet's own payload is in place, including beyond the
    // old 2 KiB memset boundary.
    EXPECT_EQ(bench.memory().read8(sim::layout::packetBase + 100),
              0xABu);
    EXPECT_EQ(bench.memory().read8(sim::layout::packetBase + 2500),
              0xABu);
    EXPECT_EQ(bench.memory().read8(sim::layout::packetBase + 2999),
              0xABu);

    Packet small = simplePacket(); // 40 bytes
    bench.processPacket(small);
    // Packet N must not observe any byte of packet N-1 beyond its
    // own length.
    for (uint32_t off : {40u, 100u, 2047u, 2048u, 2500u, 2999u})
        EXPECT_EQ(bench.memory().read8(sim::layout::packetBase + off),
                  0u)
            << "stale byte at packet offset " << off;
}

TEST(PacketBench, UarchPublishingSurvivesRegistryReset)
{
    // The uarch counter references are cached per instance at
    // construction; a registry reset zeroes values but must not
    // break delta publishing.
    CountingApp app;
    BenchConfig cfg;
    cfg.microArch = true;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    bench.processPacket(packet);
    obs::defaultRegistry().reset();
    bench.processPacket(packet);
    // The handler runs 7 instructions per packet, so the second
    // packet publishes a delta of exactly 7 icache accesses.
    obs::Registry &reg = obs::defaultRegistry();
    EXPECT_EQ(reg.counter("uarch.icache.hits").value() +
                  reg.counter("uarch.icache.misses").value(),
              7u);
    EXPECT_EQ(reg.counter("pb.packets").value(), 1u);
}

TEST(PacketBench, SelectiveAccountingExcludesFrameworkWork)
{
    // Setup writes megabytes of state; packet stats must see none
    // of it — only the handler's own instructions and accesses.
    apps::FlowClassApp app(4096);
    PacketBench bench(app);
    Packet packet = simplePacket();
    PacketOutcome outcome = bench.processPacket(packet);
    EXPECT_LT(outcome.stats.instCount, 400u);
    EXPECT_LT(outcome.stats.nonPacketAccesses(), 200u);
    // Run-level coverage counts only app-touched bytes.
    EXPECT_LT(bench.recorder().dataMemoryBytes(), 4096u);
}

TEST(PacketBench, ScramblePreprocessing)
{
    CountingApp app;
    BenchConfig cfg;
    cfg.scramble = true;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    uint32_t orig_src = Ipv4ConstView(packet.l3()).src();
    bench.processPacket(packet);
    AddressScrambler scrambler(cfg.scrambleKey);
    EXPECT_EQ(Ipv4ConstView(packet.l3()).src(),
              scrambler.scramble(orig_src));
}

TEST(PacketBench, RunOverTraceWithSink)
{
    auto table = route::generateSmallTable(64, 2);
    apps::Ipv4TrieApp app(table);
    PacketBench bench(app);
    SyntheticTrace trace(Profile::MRA, 100, 4);

    std::stringstream out;
    PcapWriter sink(out, LinkType::Raw);
    auto outcomes = bench.run(trace, 60, &sink);
    EXPECT_EQ(outcomes.size(), 60u);

    uint32_t sent = 0;
    for (const auto &outcome : outcomes) {
        if (outcome.verdict == isa::SysCode::Send)
            sent++;
    }
    // The sink holds exactly the accepted packets.
    std::stringstream in(out.str());
    PcapReader reader(in);
    uint32_t written = 0;
    while (auto packet = reader.next()) {
        written++;
        // Forwarded packets have valid (recomputed) checksums.
        EXPECT_TRUE(verifyIpv4Checksum(packet->l3(), 20));
    }
    EXPECT_EQ(written, sent);
}

TEST(PacketBench, RunStopsAtTraceEnd)
{
    CountingApp app;
    PacketBench bench(app);
    SyntheticTrace trace(Profile::LAN, 25, 1);
    auto outcomes = bench.run(trace, 1000);
    EXPECT_EQ(outcomes.size(), 25u);
}

TEST(PacketBench, RunawayHandlerHitsBudget)
{
    SpinApp app;
    BenchConfig cfg;
    cfg.instBudget = 10'000;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    EXPECT_THROW(bench.processPacket(packet), sim::BudgetError);
}

TEST(PacketBench, EmptyPacketIsFatal)
{
    CountingApp app;
    PacketBench bench(app);
    Packet empty;
    EXPECT_THROW(bench.processPacket(empty), FatalError);
}

TEST(PacketBench, MicroArchModelsAttachable)
{
    CountingApp app;
    BenchConfig cfg;
    cfg.microArch = true;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    for (int i = 0; i < 10; i++)
        bench.processPacket(packet);
    ASSERT_NE(bench.microArch(), nullptr);
    EXPECT_EQ(bench.microArch()->icache().accesses(), 70u);
    EXPECT_GT(bench.microArch()->dcache().accesses(), 0u);
}

TEST(PacketBench, TimingModelAttachable)
{
    CountingApp app;
    BenchConfig cfg;
    cfg.timing = true;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    PacketOutcome first = bench.processPacket(packet);
    PacketOutcome second = bench.processPacket(packet);
    ASSERT_NE(bench.timing(), nullptr);
    // Cycles >= instructions; warm runs cost no more than cold.
    EXPECT_GE(first.cycles, first.stats.instCount);
    EXPECT_LE(second.cycles, first.cycles);
    EXPECT_GT(second.cycles, 0u);
    EXPECT_GE(bench.timing()->cpi(), 1.0);
}

TEST(PacketBench, NoTimingByDefault)
{
    CountingApp app;
    PacketBench bench(app);
    Packet packet = simplePacket();
    PacketOutcome outcome = bench.processPacket(packet);
    EXPECT_EQ(bench.timing(), nullptr);
    EXPECT_EQ(outcome.cycles, 0u);
}

TEST(PacketBench, ProfilerAttachable)
{
    CountingApp app;
    BenchConfig cfg;
    cfg.profile = true;
    cfg.timing = true;
    PacketBench bench(app, cfg);
    Packet packet = simplePacket();
    for (int i = 0; i < 3; i++)
        bench.processPacket(packet);
    ASSERT_NE(bench.profiler(), nullptr);
    // The handler runs 7 instructions per packet (see above).
    EXPECT_EQ(bench.profiler()->totalInsts(), 21u);
    // With the timer attached, every modeled cycle is attributed.
    EXPECT_GE(bench.profiler()->totalCycles(),
              bench.profiler()->totalInsts());
    EXPECT_FALSE(bench.profiler()->rankedBlocks().empty());
    EXPECT_NE(bench.profiler()->render().find("hot-spot profile"),
              std::string::npos);
}

TEST(PacketBench, NoProfilerByDefault)
{
    CountingApp app;
    PacketBench bench(app);
    EXPECT_EQ(bench.profiler(), nullptr);
}

TEST(PacketBench, BlockMapAvailable)
{
    CountingApp app;
    PacketBench bench(app);
    EXPECT_GE(bench.blocks().numBlocks(), 1u);
    EXPECT_EQ(bench.program().entry("main"), sim::layout::textBase);
}

} // namespace
