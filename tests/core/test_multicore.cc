/**
 * @file
 * Multi-engine simulation tests: flow pinning, state partitioning,
 * load balance, and equivalence of aggregate state with a
 * single-engine run.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/flow_class.hh"
#include "apps/nat_app.hh"
#include "core/multicore.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "sim/simerror.hh"

namespace
{

using namespace pb;
using namespace pb::core;
using namespace pb::net;

MultiCoreBench::AppFactory
flowFactory(uint32_t buckets)
{
    return [buckets] {
        return std::make_unique<apps::FlowClassApp>(buckets);
    };
}

TEST(MultiCore, FlowPinningIsStable)
{
    MultiCoreBench cores(flowFactory(256), 4);
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0b000002;
    tuple.srcPort = 42;
    tuple.dstPort = 80;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 64);

    uint32_t first = cores.processPacket(packet);
    for (int i = 0; i < 10; i++) {
        Packet copy;
        copy.bytes = buildIpv4Packet(tuple, 64);
        EXPECT_EQ(cores.processPacket(copy), first)
            << "one flow must stay on one engine";
    }
}

TEST(MultiCore, AggregateFlowCountMatchesSingleEngine)
{
    // Flow pinning partitions flows, so the sum of per-engine flow
    // tables equals the single-engine flow table.
    apps::FlowClassApp single_app(1024);
    PacketBench single(single_app);
    MultiCoreBench cores(flowFactory(1024), 8);

    SyntheticTrace t1(Profile::ODU, 3000, 7);
    SyntheticTrace t2(Profile::ODU, 3000, 7);
    while (auto p1 = t1.next()) {
        auto p2 = t2.next();
        single.processPacket(*p1);
        cores.processPacket(*p2);
    }

    uint32_t partitioned = 0;
    std::vector<std::unique_ptr<apps::FlowClassApp>> probes;
    for (uint32_t e = 0; e < cores.numEngines(); e++) {
        apps::FlowClassApp probe(1024);
        partitioned += probe.simFlowCount(cores.engine(e).memory());
    }
    EXPECT_EQ(partitioned,
              single_app.simFlowCount(single.memory()));
}

TEST(MultiCore, LoadRoughlyBalancedOnBackboneTraffic)
{
    MultiCoreBench cores(flowFactory(1024), 8);
    SyntheticTrace trace(Profile::MRA, 8000, 3);
    MultiCoreResult result = cores.run(trace, 8000);

    EXPECT_EQ(result.totalPackets, 8000u);
    EXPECT_EQ(result.engines.size(), 8u);
    for (const auto &engine : result.engines)
        EXPECT_GT(engine.packets, 0u);
    // Thousands of flows spread over 8 engines: modest imbalance.
    EXPECT_LT(result.imbalance(), 1.35);
    EXPECT_GT(result.speedup(), 8.0 / 1.35);
    EXPECT_LE(result.speedup(), 8.0);
}

TEST(MultiCore, SkewedTrafficLimitsSpeedup)
{
    // One elephant flow: it pins to one engine, capping speedup.
    MultiCoreBench cores(flowFactory(256), 4);
    FiveTuple tuple;
    tuple.src = 1;
    tuple.dst = 2;
    tuple.srcPort = 3;
    tuple.dstPort = 4;
    tuple.proto = 17;
    for (int i = 0; i < 1000; i++) {
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 64);
        cores.processPacket(packet);
    }
    MultiCoreResult result = cores.result();
    EXPECT_NEAR(result.speedup(), 1.0, 0.01)
        << "a single flow cannot parallelize under flow pinning";
    EXPECT_NEAR(result.imbalance(), 4.0, 0.05);
}

TEST(MultiCore, NatEnginesAllocateIndependentPorts)
{
    // Each engine owns an independent binding table; bindings sum to
    // at least the single-table count (flows split across engines
    // never share a binding).
    auto factory = [] {
        return std::make_unique<apps::NatApp>(0xc6336401, 20000, 256);
    };
    MultiCoreBench cores(factory, 4);
    SyntheticTrace trace(Profile::COS, 2000, 9);
    cores.run(trace, 2000);

    uint32_t total_bindings = 0;
    apps::NatApp probe(0xc6336401, 20000, 256);
    for (uint32_t e = 0; e < cores.numEngines(); e++)
        total_bindings += probe.simBindingCount(cores.engine(e).memory());
    EXPECT_GT(total_bindings, 100u);
}

TEST(MultiCore, UnparseablePacketsSpreadRoundRobin)
{
    // Packets with no parseable 5-tuple (here: not IPv4) must not
    // all pile up on engine 0 — they fall back to round-robin.
    MultiCoreBench cores(flowFactory(64), 4);
    std::set<uint32_t> used;
    for (int i = 0; i < 8; i++) {
        Packet packet;
        packet.bytes.assign(40, 0); // version nibble 0: not IPv4
        uint32_t index = cores.processPacket(packet);
        EXPECT_EQ(index, static_cast<uint32_t>(i) % 4u);
        used.insert(index);
    }
    EXPECT_EQ(used.size(), 4u);
    MultiCoreResult result = cores.result();
    for (const auto &engine : result.engines)
        EXPECT_EQ(engine.packets, 2u);
}

TEST(MultiCore, ParallelMatchesSerialPerEngine)
{
    // The parallel run loop makes the same dispatch decisions in the
    // same order as the serial path, so per-engine packet and
    // instruction totals are bit-identical — across batch sizes and
    // queue depths, including the degenerate 1/1 configuration.
    MultiCoreBench serial(flowFactory(512), 4);
    SyntheticTrace serial_trace(Profile::ODU, 3000, 7);
    MultiCoreResult serial_res = serial.run(serial_trace, 3000);

    struct Knobs
    {
        uint32_t batch;
        uint32_t depth;
    };
    for (Knobs knobs : {Knobs{1, 1}, Knobs{16, 4}, Knobs{64, 8}}) {
        BenchConfig cfg;
        cfg.parallel = true;
        cfg.dispatchBatch = knobs.batch;
        cfg.queueDepth = knobs.depth;
        MultiCoreBench parallel(flowFactory(512), 4, cfg);
        SyntheticTrace trace(Profile::ODU, 3000, 7);
        MultiCoreResult par_res = parallel.run(trace, 3000);

        ASSERT_EQ(par_res.engines.size(), serial_res.engines.size());
        for (size_t e = 0; e < serial_res.engines.size(); e++) {
            EXPECT_EQ(par_res.engines[e].packets,
                      serial_res.engines[e].packets)
                << "batch " << knobs.batch << " engine " << e;
            EXPECT_EQ(par_res.engines[e].instructions,
                      serial_res.engines[e].instructions)
                << "batch " << knobs.batch << " engine " << e;
        }
        EXPECT_EQ(par_res.totalPackets, serial_res.totalPackets);
        EXPECT_EQ(par_res.totalInstructions,
                  serial_res.totalInstructions);
    }
}

TEST(MultiCore, ParallelPartitionsFlowStateLikeSerial)
{
    // Engine-local application state (the flow tables) is also
    // identical to the serial run, engine by engine.
    MultiCoreBench serial(flowFactory(1024), 8);
    MultiCoreBench parallel(flowFactory(1024), 8, [] {
        BenchConfig cfg;
        cfg.parallel = true;
        return cfg;
    }());
    SyntheticTrace t1(Profile::MRA, 4000, 11);
    SyntheticTrace t2(Profile::MRA, 4000, 11);
    serial.run(t1, 4000);
    parallel.run(t2, 4000);

    apps::FlowClassApp probe(1024);
    for (uint32_t e = 0; e < 8; e++)
        EXPECT_EQ(probe.simFlowCount(parallel.engine(e).memory()),
                  probe.simFlowCount(serial.engine(e).memory()))
            << "engine " << e;
}

TEST(MultiCore, ParallelPropagatesWorkerExceptions)
{
    // A worker whose application blows the instruction budget must
    // surface the error on the calling thread after a clean
    // shutdown of every other worker.
    class SpinApp : public Application
    {
      public:
        std::string name() const override { return "spin"; }
        isa::Program
        setup(sim::Memory &mem) override
        {
            (void)mem;
            return isa::Assembler(sim::layout::textBase)
                .assemble("main: b main\n");
        }
    };
    BenchConfig cfg;
    cfg.parallel = true;
    cfg.instBudget = 10'000;
    cfg.dispatchBatch = 8;
    MultiCoreBench cores(
        [] { return std::make_unique<SpinApp>(); }, 4, cfg);
    SyntheticTrace trace(Profile::MRA, 2000, 5);
    EXPECT_THROW(cores.run(trace, 2000), sim::BudgetError);
}

TEST(MultiCore, ZeroEnginesRejected)
{
    EXPECT_THROW(MultiCoreBench cores(flowFactory(64), 0),
                 FatalError);
}

TEST(MultiCore, SingleEngineDegeneratesToPacketBench)
{
    MultiCoreBench cores(flowFactory(256), 1);
    SyntheticTrace trace(Profile::LAN, 500, 2);
    MultiCoreResult result = cores.run(trace, 500);
    EXPECT_EQ(result.totalPackets, 500u);
    EXPECT_DOUBLE_EQ(result.imbalance(), 1.0);
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
}

} // namespace
