/**
 * @file
 * Multi-engine simulation tests: flow pinning, state partitioning,
 * load balance, and equivalence of aggregate state with a
 * single-engine run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "apps/flow_class.hh"
#include "apps/nat_app.hh"
#include "common/rng.hh"
#include "core/multicore.hh"
#include "isa/assembler.hh"
#include "net/faultinject.hh"
#include "net/tracegen.hh"
#include "sim/simerror.hh"

namespace
{

using namespace pb;
using namespace pb::core;
using namespace pb::net;

MultiCoreBench::AppFactory
flowFactory(uint32_t buckets)
{
    return [buckets] {
        return std::make_unique<apps::FlowClassApp>(buckets);
    };
}

TEST(MultiCore, FlowPinningIsStable)
{
    MultiCoreBench cores(flowFactory(256), 4);
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0b000002;
    tuple.srcPort = 42;
    tuple.dstPort = 80;
    tuple.proto = 6;
    Packet packet;
    packet.bytes = buildIpv4Packet(tuple, 64);

    uint32_t first = cores.processPacket(packet);
    for (int i = 0; i < 10; i++) {
        Packet copy;
        copy.bytes = buildIpv4Packet(tuple, 64);
        EXPECT_EQ(cores.processPacket(copy), first)
            << "one flow must stay on one engine";
    }
}

TEST(MultiCore, AggregateFlowCountMatchesSingleEngine)
{
    // Flow pinning partitions flows, so the sum of per-engine flow
    // tables equals the single-engine flow table.
    apps::FlowClassApp single_app(1024);
    PacketBench single(single_app);
    MultiCoreBench cores(flowFactory(1024), 8);

    SyntheticTrace t1(Profile::ODU, 3000, 7);
    SyntheticTrace t2(Profile::ODU, 3000, 7);
    while (auto p1 = t1.next()) {
        auto p2 = t2.next();
        single.processPacket(*p1);
        cores.processPacket(*p2);
    }

    uint32_t partitioned = 0;
    std::vector<std::unique_ptr<apps::FlowClassApp>> probes;
    for (uint32_t e = 0; e < cores.numEngines(); e++) {
        apps::FlowClassApp probe(1024);
        partitioned += probe.simFlowCount(cores.engine(e).memory());
    }
    EXPECT_EQ(partitioned,
              single_app.simFlowCount(single.memory()));
}

TEST(MultiCore, LoadRoughlyBalancedOnBackboneTraffic)
{
    MultiCoreBench cores(flowFactory(1024), 8);
    SyntheticTrace trace(Profile::MRA, 8000, 3);
    MultiCoreResult result = cores.run(trace, 8000);

    EXPECT_EQ(result.totalPackets, 8000u);
    EXPECT_EQ(result.engines.size(), 8u);
    for (const auto &engine : result.engines)
        EXPECT_GT(engine.packets, 0u);
    // Thousands of flows spread over 8 engines: modest imbalance.
    EXPECT_LT(result.imbalance(), 1.35);
    EXPECT_GT(result.speedup(), 8.0 / 1.35);
    EXPECT_LE(result.speedup(), 8.0);
}

TEST(MultiCore, SkewedTrafficLimitsSpeedup)
{
    // One elephant flow: it pins to one engine, capping speedup.
    MultiCoreBench cores(flowFactory(256), 4);
    FiveTuple tuple;
    tuple.src = 1;
    tuple.dst = 2;
    tuple.srcPort = 3;
    tuple.dstPort = 4;
    tuple.proto = 17;
    for (int i = 0; i < 1000; i++) {
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 64);
        cores.processPacket(packet);
    }
    MultiCoreResult result = cores.result();
    EXPECT_NEAR(result.speedup(), 1.0, 0.01)
        << "a single flow cannot parallelize under flow pinning";
    EXPECT_NEAR(result.imbalance(), 4.0, 0.05);
}

TEST(MultiCore, NatEnginesAllocateIndependentPorts)
{
    // Each engine owns an independent binding table; bindings sum to
    // at least the single-table count (flows split across engines
    // never share a binding).
    auto factory = [] {
        return std::make_unique<apps::NatApp>(0xc6336401, 20000, 256);
    };
    MultiCoreBench cores(factory, 4);
    SyntheticTrace trace(Profile::COS, 2000, 9);
    cores.run(trace, 2000);

    uint32_t total_bindings = 0;
    apps::NatApp probe(0xc6336401, 20000, 256);
    for (uint32_t e = 0; e < cores.numEngines(); e++)
        total_bindings += probe.simBindingCount(cores.engine(e).memory());
    EXPECT_GT(total_bindings, 100u);
}

TEST(MultiCore, UnparseablePacketsSpreadRoundRobin)
{
    // Packets with no parseable 5-tuple (here: not IPv4) must not
    // all pile up on engine 0 — they fall back to round-robin.
    MultiCoreBench cores(flowFactory(64), 4);
    std::set<uint32_t> used;
    for (int i = 0; i < 8; i++) {
        Packet packet;
        packet.bytes.assign(40, 0); // version nibble 0: not IPv4
        uint32_t index = cores.processPacket(packet);
        EXPECT_EQ(index, static_cast<uint32_t>(i) % 4u);
        used.insert(index);
    }
    EXPECT_EQ(used.size(), 4u);
    MultiCoreResult result = cores.result();
    for (const auto &engine : result.engines)
        EXPECT_EQ(engine.packets, 2u);
}

TEST(MultiCore, ParallelMatchesSerialPerEngine)
{
    // The parallel run loop makes the same dispatch decisions in the
    // same order as the serial path, so per-engine packet and
    // instruction totals are bit-identical — across batch sizes and
    // queue depths, including the degenerate 1/1 configuration.
    MultiCoreBench serial(flowFactory(512), 4);
    SyntheticTrace serial_trace(Profile::ODU, 3000, 7);
    MultiCoreResult serial_res = serial.run(serial_trace, 3000);

    struct Knobs
    {
        uint32_t batch;
        uint32_t depth;
    };
    for (Knobs knobs : {Knobs{1, 1}, Knobs{16, 4}, Knobs{64, 8}}) {
        BenchConfig cfg;
        cfg.parallel = true;
        cfg.dispatchBatch = knobs.batch;
        cfg.queueDepth = knobs.depth;
        MultiCoreBench parallel(flowFactory(512), 4, cfg);
        SyntheticTrace trace(Profile::ODU, 3000, 7);
        MultiCoreResult par_res = parallel.run(trace, 3000);

        ASSERT_EQ(par_res.engines.size(), serial_res.engines.size());
        for (size_t e = 0; e < serial_res.engines.size(); e++) {
            EXPECT_EQ(par_res.engines[e].packets,
                      serial_res.engines[e].packets)
                << "batch " << knobs.batch << " engine " << e;
            EXPECT_EQ(par_res.engines[e].instructions,
                      serial_res.engines[e].instructions)
                << "batch " << knobs.batch << " engine " << e;
        }
        EXPECT_EQ(par_res.totalPackets, serial_res.totalPackets);
        EXPECT_EQ(par_res.totalInstructions,
                  serial_res.totalInstructions);
    }
}

TEST(MultiCore, ParallelPartitionsFlowStateLikeSerial)
{
    // Engine-local application state (the flow tables) is also
    // identical to the serial run, engine by engine.
    MultiCoreBench serial(flowFactory(1024), 8);
    MultiCoreBench parallel(flowFactory(1024), 8, [] {
        BenchConfig cfg;
        cfg.parallel = true;
        return cfg;
    }());
    SyntheticTrace t1(Profile::MRA, 4000, 11);
    SyntheticTrace t2(Profile::MRA, 4000, 11);
    serial.run(t1, 4000);
    parallel.run(t2, 4000);

    apps::FlowClassApp probe(1024);
    for (uint32_t e = 0; e < 8; e++)
        EXPECT_EQ(probe.simFlowCount(parallel.engine(e).memory()),
                  probe.simFlowCount(serial.engine(e).memory()))
            << "engine " << e;
}

TEST(MultiCore, ParallelPropagatesWorkerExceptions)
{
    // A worker whose application blows the instruction budget must
    // surface the error on the calling thread after a clean
    // shutdown of every other worker.
    class SpinApp : public Application
    {
      public:
        std::string name() const override { return "spin"; }
        isa::Program
        setup(sim::Memory &mem) override
        {
            (void)mem;
            return isa::Assembler(sim::layout::textBase)
                .assemble("main: b main\n");
        }
    };
    BenchConfig cfg;
    cfg.parallel = true;
    cfg.instBudget = 10'000;
    cfg.dispatchBatch = 8;
    MultiCoreBench cores(
        [] { return std::make_unique<SpinApp>(); }, 4, cfg);
    SyntheticTrace trace(Profile::MRA, 2000, 5);
    EXPECT_THROW(cores.run(trace, 2000), sim::BudgetError);
}

/** Replays a pre-built packet vector (deterministic skew shapes). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<Packet> packets)
        : packets(std::move(packets))
    {
    }

    std::optional<Packet> next() override
    {
        if (index >= packets.size())
            return std::nullopt;
        return packets[index++];
    }

    std::string name() const override { return "vector"; }

  private:
    std::vector<Packet> packets;
    size_t index = 0;
};

/**
 * Heavy-tailed corpus: every 4th packet belongs to one elephant
 * flow, the rest cycle through @p mice_flows distinct mice.  The
 * interleaving means the elephant is hot from the first packets —
 * the shape the Stealing policy exists for.
 */
std::vector<Packet>
skewedCorpus(uint32_t total, uint32_t mice_flows)
{
    std::vector<Packet> out;
    out.reserve(total);
    FiveTuple elephant;
    elephant.src = 0x0a0a0a0a;
    elephant.dst = 0x0b0b0b0b;
    elephant.srcPort = 4242;
    elephant.dstPort = 443;
    elephant.proto = 6;
    uint32_t mouse = 0;
    for (uint32_t i = 0; i < total; i++) {
        FiveTuple tuple = elephant;
        if (i % 4 != 0) {
            tuple.src = 0x0c000000 + (mouse % mice_flows);
            tuple.dst = 0x0d000000 + (mouse / 7 % mice_flows);
            tuple.srcPort = static_cast<uint16_t>(1024 + mouse % 50000);
            tuple.dstPort = 80;
            tuple.proto = mouse % 3 ? 6 : 17;
            mouse++;
        }
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 64);
        out.push_back(std::move(packet));
    }
    return out;
}

TEST(MultiCore, StealingKeepsFlowOnOneEngine)
{
    // Stealing may place a *new* flow anywhere, but an established
    // flow must never move: flow order per 5-tuple is the contract.
    BenchConfig cfg;
    cfg.dispatchPolicy = DispatchPolicy::Stealing;
    MultiCoreBench cores(flowFactory(256), 4, cfg);
    std::vector<Packet> corpus = skewedCorpus(400, 37);
    std::unordered_map<uint32_t, uint32_t> homes;
    for (auto &packet : corpus) {
        Packet copy = packet;
        uint32_t engine = cores.processPacket(copy);
        // Re-derive the flow key the dispatcher used.
        FiveTuple tuple;
        ASSERT_TRUE(parseFiveTuple(packet, tuple));
        auto [it, inserted] =
            homes.try_emplace(flowHash(tuple), engine);
        EXPECT_EQ(it->second, engine)
            << "flow moved between engines";
    }
}

TEST(MultiCore, StealingBalancesElephantFlow)
{
    // Under Pinned, the elephant's engine also receives its hash
    // share of mice, so it is strictly more loaded than the rest.
    // Stealing steers new mice flows away from the busy engine, so
    // the packet imbalance must come out lower.
    std::vector<Packet> corpus = skewedCorpus(8000, 1500);

    MultiCoreBench pinned(flowFactory(512), 4);
    VectorTrace pinned_trace(corpus);
    MultiCoreResult pinned_res = pinned.run(pinned_trace, 8000);

    BenchConfig cfg;
    cfg.dispatchPolicy = DispatchPolicy::Stealing;
    MultiCoreBench stealing(flowFactory(512), 4, cfg);
    VectorTrace stealing_trace(corpus);
    MultiCoreResult stealing_res = stealing.run(stealing_trace, 8000);

    auto max_packets = [](const MultiCoreResult &res) {
        uint64_t worst = 0;
        for (const auto &engine : res.engines)
            worst = std::max(worst, engine.packets);
        return worst;
    };
    EXPECT_EQ(stealing_res.totalPackets, pinned_res.totalPackets);
    EXPECT_LT(max_packets(stealing_res), max_packets(pinned_res))
        << "stealing should unload the elephant's engine";
    // The elephant alone is 25% of traffic on 4 engines, so perfect
    // packet balance is reachable: the hot engine should carry close
    // to its fair share, far from the pinned pile-up.
    EXPECT_LT(static_cast<double>(max_packets(stealing_res)),
              0.30 * static_cast<double>(stealing_res.totalPackets));
}

TEST(MultiCore, StealingSerialParallelBitIdentical)
{
    // The Stealing decision is a deterministic function of the
    // packet sequence, made on the dispatching thread in trace
    // order — so the serial run stays the bit-identical per-engine
    // oracle, exactly as for Pinned, across hand-off knobs.
    std::vector<Packet> corpus = skewedCorpus(3000, 900);

    BenchConfig serial_cfg;
    serial_cfg.dispatchPolicy = DispatchPolicy::Stealing;
    MultiCoreBench serial(flowFactory(512), 4, serial_cfg);
    VectorTrace serial_trace(corpus);
    MultiCoreResult serial_res = serial.run(serial_trace, 3000);

    struct Knobs
    {
        uint32_t batch;
        uint32_t depth;
    };
    for (Knobs knobs : {Knobs{1, 1}, Knobs{16, 4}, Knobs{64, 8}}) {
        BenchConfig cfg;
        cfg.parallel = true;
        cfg.dispatchBatch = knobs.batch;
        cfg.queueDepth = knobs.depth;
        cfg.dispatchPolicy = DispatchPolicy::Stealing;
        MultiCoreBench parallel(flowFactory(512), 4, cfg);
        VectorTrace trace(corpus);
        MultiCoreResult par_res = parallel.run(trace, 3000);

        ASSERT_EQ(par_res.engines.size(), serial_res.engines.size());
        for (size_t e = 0; e < serial_res.engines.size(); e++) {
            EXPECT_EQ(par_res.engines[e].packets,
                      serial_res.engines[e].packets)
                << "batch " << knobs.batch << " engine " << e;
            EXPECT_EQ(par_res.engines[e].instructions,
                      serial_res.engines[e].instructions)
                << "batch " << knobs.batch << " engine " << e;
            EXPECT_EQ(par_res.engines[e].bytes,
                      serial_res.engines[e].bytes)
                << "batch " << knobs.batch << " engine " << e;
        }
        apps::FlowClassApp probe(512);
        for (uint32_t e = 0; e < 4; e++)
            EXPECT_EQ(probe.simFlowCount(parallel.engine(e).memory()),
                      probe.simFlowCount(serial.engine(e).memory()))
                << "engine " << e;
    }
}

TEST(MultiCore, StealingSerialParallelMatchOnCorruptedTraces)
{
    // The PR 3 hostile-input matrix, replayed under Stealing: with
    // deterministic injection and FaultPolicy::Drop, per-engine
    // packet/instruction/fault totals must stay bit-identical
    // between the serial oracle and the threaded run.
    struct MatrixEntry
    {
        const char *name;
        FaultInjectConfig cfg;
    };
    MatrixEntry matrix[] = {
        {"all-kinds", {}},
        {"runts-only",
         {.period = 7,
          .seed = 23,
          .bitFlips = false,
          .truncation = true,
          .headerCorruption = false,
          .oversize = false}},
        {"noise-only",
         {.period = 5,
          .seed = 31,
          .bitFlips = true,
          .truncation = false,
          .headerCorruption = true,
          .oversize = false}},
    };
    for (const MatrixEntry &entry : matrix) {
        BenchConfig serial_cfg;
        serial_cfg.dispatchPolicy = DispatchPolicy::Stealing;
        serial_cfg.faultPolicy = FaultPolicy::Drop;
        MultiCoreBench serial(flowFactory(256), 4, serial_cfg);
        SyntheticTrace serial_clean(Profile::MRA, 2000, 13);
        FaultInjectingTraceSource serial_trace(serial_clean,
                                               entry.cfg);
        MultiCoreResult serial_res = serial.run(serial_trace, 2000);

        BenchConfig par_cfg = serial_cfg;
        par_cfg.parallel = true;
        par_cfg.dispatchBatch = 16;
        MultiCoreBench parallel(flowFactory(256), 4, par_cfg);
        SyntheticTrace par_clean(Profile::MRA, 2000, 13);
        FaultInjectingTraceSource par_trace(par_clean, entry.cfg);
        MultiCoreResult par_res = parallel.run(par_trace, 2000);

        EXPECT_EQ(par_res.totalFaults, serial_res.totalFaults)
            << entry.name;
        ASSERT_EQ(par_res.engines.size(), serial_res.engines.size());
        for (size_t e = 0; e < serial_res.engines.size(); e++) {
            EXPECT_EQ(par_res.engines[e].packets,
                      serial_res.engines[e].packets)
                << entry.name << " engine " << e;
            EXPECT_EQ(par_res.engines[e].instructions,
                      serial_res.engines[e].instructions)
                << entry.name << " engine " << e;
            EXPECT_EQ(par_res.engines[e].faults,
                      serial_res.engines[e].faults)
                << entry.name << " engine " << e;
        }
    }
}

TEST(MultiCore, FragmentTrainStaysOnOneEngine)
{
    // All fragments of one datagram hash to the same (portless)
    // flow: the first fragment's ports are deliberately ignored by
    // the dispatcher-visible tuple only for offset != 0, so later
    // fragments — whose payload bytes sit where the L4 header would
    // be — must still land on the first fragment's engine only if
    // the first fragment also hashes portless.  What the fix
    // guarantees: every non-first fragment of a train lands on ONE
    // engine, regardless of the payload bytes at the L4 offset.
    MultiCoreBench cores(flowFactory(256), 4);
    FiveTuple tuple;
    tuple.src = 0x0a000001;
    tuple.dst = 0x0b000002;
    tuple.srcPort = 4242;
    tuple.dstPort = 53;
    tuple.proto = 17;
    std::set<uint32_t> engines_used;
    for (uint16_t frag_off = 1; frag_off <= 32; frag_off++) {
        Packet frag;
        frag.bytes =
            buildIpv4Packet(tuple, 64, 64,
                            static_cast<uint8_t>(frag_off)); // noisy payload
        storeBe16(frag.bytes.data() + ipv4::offFlagsFrag,
                  static_cast<uint16_t>(0x2000 | frag_off));
        // Garble the bytes at the L4 offset: pre-fix, these were
        // read as ports and split the train across engines.
        storeBe16(frag.bytes.data() + ipv4::minHeaderLen,
                  static_cast<uint16_t>(frag_off * 7919));
        storeBe16(frag.bytes.data() + ipv4::minHeaderLen + 2,
                  static_cast<uint16_t>(frag_off * 104729));
        engines_used.insert(cores.processPacket(frag));
    }
    EXPECT_EQ(engines_used.size(), 1u)
        << "fragment train split across engines";
}

TEST(MultiCore, FragmentedCorpusSerialParallelBitIdentical)
{
    // Mixed corpus — first fragments, later fragments, unparseable
    // runts — drives the batched hash front end with interleaved
    // valid/invalid lanes; the serial run stays the per-engine
    // oracle.
    std::vector<Packet> corpus;
    Rng rng(4242);
    for (uint32_t i = 0; i < 2000; i++) {
        FiveTuple tuple;
        tuple.src = 0x0a000000 + rng.below(64);
        tuple.dst = 0x0b000000 + rng.below(64);
        tuple.srcPort = static_cast<uint16_t>(1024 + rng.below(100));
        tuple.dstPort = 80;
        tuple.proto = 17;
        Packet packet;
        packet.bytes = buildIpv4Packet(tuple, 64);
        if (i % 7 == 3) { // later fragment
            storeBe16(packet.bytes.data() + ipv4::offFlagsFrag,
                      static_cast<uint16_t>(0x2000 | (1 + i % 100)));
        } else if (i % 11 == 5) { // runt: no parseable 5-tuple
            packet.bytes.resize(6);
        }
        corpus.push_back(std::move(packet));
    }

    MultiCoreBench serial(flowFactory(256), 4);
    VectorTrace serial_trace(corpus);
    MultiCoreResult serial_res = serial.run(serial_trace, 2000);

    BenchConfig cfg;
    cfg.parallel = true;
    cfg.dispatchBatch = 16;
    MultiCoreBench parallel(flowFactory(256), 4, cfg);
    VectorTrace par_trace(corpus);
    MultiCoreResult par_res = parallel.run(par_trace, 2000);

    ASSERT_EQ(par_res.engines.size(), serial_res.engines.size());
    for (size_t e = 0; e < serial_res.engines.size(); e++) {
        EXPECT_EQ(par_res.engines[e].packets,
                  serial_res.engines[e].packets) << "engine " << e;
        EXPECT_EQ(par_res.engines[e].instructions,
                  serial_res.engines[e].instructions)
            << "engine " << e;
        EXPECT_EQ(par_res.engines[e].bytes,
                  serial_res.engines[e].bytes) << "engine " << e;
    }
}

TEST(MultiCore, ZeroEnginesRejected)
{
    EXPECT_THROW(MultiCoreBench cores(flowFactory(64), 0),
                 FatalError);
}

TEST(MultiCore, SingleEngineDegeneratesToPacketBench)
{
    MultiCoreBench cores(flowFactory(256), 1);
    SyntheticTrace trace(Profile::LAN, 500, 2);
    MultiCoreResult result = cores.run(trace, 500);
    EXPECT_EQ(result.totalPackets, 500u);
    EXPECT_DOUBLE_EQ(result.imbalance(), 1.0);
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
}

} // namespace
