/**
 * @file
 * Longest-prefix-match tests: known cases for each structure, then
 * the three-way differential property (linear scan vs radix trie vs
 * LC-trie must agree on every lookup).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "route/lctrie.hh"
#include "route/linear.hh"
#include "route/prefix.hh"
#include "route/radix.hh"

namespace
{

using namespace pb;
using namespace pb::route;

std::vector<RouteEntry>
handTable()
{
    auto p = [](const char *s) { return *parseIpv4(s); };
    return {
        {p("0.0.0.0"), 0, 100},
        {p("10.0.0.0"), 8, 1},
        {p("10.1.0.0"), 16, 2},
        {p("10.1.2.0"), 24, 3},
        {p("10.1.2.128"), 25, 4},
        {p("192.168.0.0"), 16, 5},
        {p("192.168.64.0"), 18, 6},
        {p("128.0.0.0"), 1, 7},
    };
}

struct Expectation
{
    const char *addr;
    uint32_t hop;
};

const Expectation expectations[] = {
    {"10.1.2.200", 4},  // /25 wins
    {"10.1.2.5", 3},    // /24
    {"10.1.9.9", 2},    // /16
    {"10.9.9.9", 1},    // /8
    {"11.0.0.1", 100},  // default only
    {"192.168.70.1", 6},
    {"192.168.1.1", 5},
    {"200.1.1.1", 7},   // 128/1
    {"1.2.3.4", 100},
};

TEST(Lpm, LinearKnownCases)
{
    LinearLpm lpm(handTable());
    for (const auto &e : expectations)
        EXPECT_EQ(lpm.lookup(*parseIpv4(e.addr)), e.hop) << e.addr;
}

TEST(Lpm, RadixKnownCases)
{
    RadixTable radix(handTable());
    for (const auto &e : expectations)
        EXPECT_EQ(radix.lookup(*parseIpv4(e.addr)), e.hop) << e.addr;
}

TEST(Lpm, LcTrieKnownCases)
{
    LcTrie trie(handTable());
    for (const auto &e : expectations)
        EXPECT_EQ(trie.lookup(*parseIpv4(e.addr)), e.hop) << e.addr;
}

TEST(Lpm, NoDefaultRouteMeansNoRoute)
{
    std::vector<RouteEntry> table = {{0x0a000000, 8, 1}};
    LinearLpm linear(table);
    RadixTable radix(table);
    LcTrie trie(table);
    EXPECT_EQ(linear.lookup(0x0b000000), noRoute);
    EXPECT_EQ(radix.lookup(0x0b000000), noRoute);
    EXPECT_EQ(trie.lookup(0x0b000000), noRoute);
    EXPECT_EQ(trie.lookup(0x0a123456), 1u);
}

TEST(Lpm, HostRouteSlash32)
{
    std::vector<RouteEntry> table = {
        {0, 0, 9}, {0xc0a80101, 32, 1}, {0xc0a80100, 24, 2}};
    RadixTable radix(table);
    LcTrie trie(table);
    EXPECT_EQ(radix.lookup(0xc0a80101), 1u);
    EXPECT_EQ(trie.lookup(0xc0a80101), 1u);
    EXPECT_EQ(radix.lookup(0xc0a80102), 2u);
    EXPECT_EQ(trie.lookup(0xc0a80102), 2u);
}

/**
 * Three-way differential over generated tables and mixed address
 * patterns: uniform random plus addresses biased to sit near table
 * prefixes (to exercise deep matches, not just the default route).
 */
class LpmDifferential : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(LpmDifferential, AllThreeStructuresAgree)
{
    uint32_t seed = GetParam();
    auto entries = generateCoreTable(seed % 2 ? 2000 : 300, seed);
    LinearLpm linear(entries);
    RadixTable radix(entries);
    LcTrie trie(entries);

    Rng rng(seed * 31 + 5);
    for (int i = 0; i < 4000; i++) {
        uint32_t addr;
        if (i % 3 == 0) {
            addr = rng.next();
        } else {
            // Perturb a random table prefix so lookups land near and
            // inside real prefixes.
            const auto &entry = entries[rng.below(
                static_cast<uint32_t>(entries.size()))];
            addr = entry.prefix | (rng.next() & ~prefixMask(entry.len));
            if (i % 7 == 0)
                addr ^= 1u << rng.below(32);
        }
        uint32_t want = linear.lookup(addr);
        EXPECT_EQ(radix.lookup(addr), want)
            << "radix mismatch for " << formatIpv4(addr);
        EXPECT_EQ(trie.lookup(addr), want)
            << "lctrie mismatch for " << formatIpv4(addr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Lpm, RadixPackedImageIsConsistent)
{
    auto entries = generateSmallTable(50, 2);
    RadixTable radix(entries);
    auto words = radix.packImage(0x00200000);
    EXPECT_EQ(words.size(), radix.numNodes() * 4);
    // Walk the packed image for a few addresses and compare with the
    // host lookup (interpreting the image the way the NPE32 program
    // will).
    using namespace radixlayout;
    auto image_lookup = [&](uint32_t addr) -> uint32_t {
        uint32_t best = noRoute;
        uint32_t node = 0x00200000;
        unsigned depth = 0;
        while (node != 0) {
            size_t w = (node - 0x00200000) / 4;
            if (words[w + offValid / 4])
                best = words[w + offNextHop / 4];
            if (depth >= 32)
                break;
            node = bit(addr, 31 - depth) ? words[w + offRight / 4]
                                         : words[w + offLeft / 4];
            depth++;
        }
        return best;
    };
    Rng rng(77);
    for (int i = 0; i < 1000; i++) {
        uint32_t addr = rng.next();
        EXPECT_EQ(image_lookup(addr), radix.lookup(addr));
    }
}

TEST(Lpm, LcTriePackedImageIsConsistent)
{
    auto entries = generateSmallTable(80, 4);
    LcTrie trie(entries);
    uint32_t leaf_base = 0;
    const uint32_t base = 0x00300000;
    auto words = trie.packImage(base, leaf_base);
    ASSERT_GT(leaf_base, base);

    using namespace lclayout;
    auto image_lookup = [&](uint32_t addr) -> uint32_t {
        auto word_at = [&](uint32_t a) { return words[(a - base) / 4]; };
        uint32_t node = word_at(base);
        unsigned pos = nodeSkip(node);
        while (nodeBranch(node) != 0) {
            unsigned b = nodeBranch(node);
            uint32_t idx =
                nodeAdr(node) + ((addr << pos) >> (32u - b));
            node = word_at(base + idx * 4);
            pos += b + nodeSkip(node);
        }
        uint32_t leaf_addr = leaf_base + nodeAdr(node) * leafSize;
        uint32_t key = word_at(leaf_addr + leafOffKey);
        uint32_t len = word_at(leaf_addr + leafOffLen);
        uint32_t hop = word_at(leaf_addr + leafOffNextHop);
        if ((addr & prefixMask(len)) == key)
            return hop;
        return noRoute;
    };
    Rng rng(88);
    for (int i = 0; i < 1000; i++) {
        uint32_t addr = rng.next();
        EXPECT_EQ(image_lookup(addr), trie.lookup(addr));
    }
}

TEST(Lpm, LcTrieIsShallow)
{
    auto entries = generateCoreTable(4000, 11);
    LcTrie trie(entries);
    // Level compression should keep the average depth low — this is
    // the property that makes IPv4-trie ~20x cheaper than IPv4-radix.
    EXPECT_LT(trie.averageDepth(), 8.0);
}

TEST(Lpm, RejectsMalformedEntries)
{
    EXPECT_THROW(RadixTable({{0x0a000000, 40, 1}}), FatalError);
    EXPECT_THROW(RadixTable({{0x0a000001, 8, 1}}), FatalError)
        << "prefix bits below the mask must be rejected";
    EXPECT_THROW(LcTrie({{0x0a000000, 40, 1}}), FatalError);
}

} // namespace
