/**
 * @file
 * Routing-table generator tests.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bitops.hh"
#include "route/prefix.hh"

namespace
{

using namespace pb;
using namespace pb::route;

TEST(TableGen, CoreTableShape)
{
    auto table = generateCoreTable(4096, 1);
    // default + 256 /8s + n.
    EXPECT_EQ(table.size(), 1u + 256u + 4096u);

    std::map<uint8_t, uint32_t> by_len;
    std::set<std::pair<uint32_t, uint8_t>> unique;
    bool has_default = false;
    for (const auto &entry : table) {
        EXPECT_LE(entry.len, 32u);
        EXPECT_EQ(entry.prefix & ~prefixMask(entry.len), 0u)
            << "prefix must be masked";
        EXPECT_TRUE(unique.emplace(entry.prefix, entry.len).second)
            << "duplicate prefix";
        if (entry.len == 0)
            has_default = true;
        else
            EXPECT_GE(entry.nextHop, 1u);
        EXPECT_LE(entry.nextHop, numInterfaces);
        by_len[entry.len]++;
    }
    EXPECT_TRUE(has_default);
    EXPECT_EQ(by_len[8], 256u + by_len[8] - 256u);
    // /24 dominates, like real BGP tables.
    uint32_t max_count = 0;
    uint8_t max_len = 0;
    for (auto [len, count] : by_len) {
        if (len > 8 && count > max_count) {
            max_count = count;
            max_len = len;
        }
    }
    EXPECT_EQ(max_len, 24);
    EXPECT_GT(max_count, 4096u * 4 / 10);
}

TEST(TableGen, Deterministic)
{
    auto a = generateCoreTable(100, 7);
    auto b = generateCoreTable(100, 7);
    EXPECT_EQ(a, b);
    auto c = generateCoreTable(100, 8);
    EXPECT_NE(a, c);
}

TEST(TableGen, SmallTableShape)
{
    auto table = generateSmallTable(160, 3);
    EXPECT_EQ(table.size(), 161u);
    for (const auto &entry : table) {
        if (entry.len != 0) {
            EXPECT_GE(entry.len, 8u);
            EXPECT_LE(entry.len, 24u);
        }
    }
}

} // namespace
