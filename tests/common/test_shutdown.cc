/**
 * @file
 * Graceful-shutdown flag tests: programmatic requests, real signal
 * delivery through the installed handlers, and test reset.
 *
 * Each test that raises the flag resets it on the way out — the flag
 * is process-global and later tests in this binary (and the SPSC
 * park tests) must not see a stale shutdown request.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "common/shutdown.hh"

namespace
{

using namespace pb;

class ShutdownTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetShutdownForTest(); }
    void TearDown() override { resetShutdownForTest(); }
};

TEST_F(ShutdownTest, CleanByDefault)
{
    EXPECT_FALSE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), 0);
}

TEST_F(ShutdownTest, ProgrammaticRequestRaisesFlag)
{
    requestShutdown();
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), 0);
}

TEST_F(ShutdownTest, ResetClearsFlag)
{
    requestShutdown(SIGTERM);
    ASSERT_TRUE(shutdownRequested());
    resetShutdownForTest();
    EXPECT_FALSE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), 0);
}

TEST_F(ShutdownTest, SigtermIsCaughtAndRecorded)
{
    installShutdownHandlers();
    ASSERT_EQ(raise(SIGTERM), 0);
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGTERM);
}

TEST_F(ShutdownTest, SigintIsCaughtAndRecorded)
{
    installShutdownHandlers();
    ASSERT_EQ(raise(SIGINT), 0);
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGINT);
}

TEST_F(ShutdownTest, HandlersRearmAfterFiring)
{
    // The handler restores SIG_DFL after firing (second signal =
    // hard kill); installShutdownHandlers() must re-arm so the next
    // graceful cycle works — this is what lets one test process
    // exercise the path repeatedly.
    installShutdownHandlers();
    ASSERT_EQ(raise(SIGTERM), 0);
    ASSERT_TRUE(shutdownRequested());

    resetShutdownForTest();
    installShutdownHandlers();
    ASSERT_EQ(raise(SIGTERM), 0);
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGTERM);
}

} // namespace
