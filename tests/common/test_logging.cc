/**
 * @file
 * Unit tests for error helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

using namespace pb;

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strprintf("%08x", 0xbeefu), "0000beef");
    EXPECT_EQ(strprintf("no args"), "no args");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input %d", 7), FatalError);
    try {
        fatal("bad input %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad input 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, ErrorHierarchy)
{
    // Both error kinds are catchable as pb::Error.
    EXPECT_THROW(fatal("x"), Error);
    EXPECT_THROW(panic("x"), Error);
}

TEST(Logging, ParseLogLevelNamesAndDigits)
{
    EXPECT_EQ(parseLogLevel("error", LogLevel::Warn), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("warn", LogLevel::Error), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning", LogLevel::Error),
              LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("INFO", LogLevel::Warn), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Debug", LogLevel::Warn), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("trace", LogLevel::Warn), LogLevel::Trace);
    EXPECT_EQ(parseLogLevel("0", LogLevel::Warn), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("4", LogLevel::Warn), LogLevel::Trace);
    // Junk falls back.
    EXPECT_EQ(parseLogLevel("loud", LogLevel::Info), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("", LogLevel::Debug), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("9", LogLevel::Warn), LogLevel::Warn);
}

TEST(Logging, SetLogLevelControlsEnablement)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Trace));

    setLogLevel(LogLevel::Trace);
    EXPECT_TRUE(logEnabled(LogLevel::Trace));
    EXPECT_EQ(logLevel(), LogLevel::Trace);

    // PB_LOG compiles and filters; a disabled level's arguments are
    // not evaluated.
    setLogLevel(LogLevel::Error);
    int evaluations = 0;
    auto touch = [&evaluations] { return ++evaluations; };
    PB_LOG(Debug, "never shown %d", touch());
    EXPECT_EQ(evaluations, 0);
    setLogLevel(LogLevel::Warn);
}

} // namespace
