/**
 * @file
 * Unit tests for error helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

using namespace pb;

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strprintf("%08x", 0xbeefu), "0000beef");
    EXPECT_EQ(strprintf("no args"), "no args");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input %d", 7), FatalError);
    try {
        fatal("bad input %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad input 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, ErrorHierarchy)
{
    // Both error kinds are catchable as pb::Error.
    EXPECT_THROW(fatal("x"), Error);
    EXPECT_THROW(panic("x"), Error);
}

} // namespace
