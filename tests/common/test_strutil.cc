/**
 * @file
 * Unit tests for string utilities.
 */

#include <gtest/gtest.h>

#include "common/strutil.hh"

namespace
{

using namespace pb;

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strutil, SplitPreservesEmptyFields)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strutil, SplitWs)
{
    auto v = splitWs("  one\ttwo   three ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "one");
    EXPECT_EQ(v[1], "two");
    EXPECT_EQ(v[2], "three");
    EXPECT_TRUE(splitWs("   ").empty());
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strutil, ParseIntDecimalAndHex)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt(" 0xff "), 255);
    EXPECT_EQ(parseInt("0"), 0);
}

TEST(Strutil, ParseIntRejectsGarbage)
{
    EXPECT_FALSE(parseInt(""));
    EXPECT_FALSE(parseInt("abc"));
    EXPECT_FALSE(parseInt("12x"));
    EXPECT_FALSE(parseInt("-"));
    EXPECT_FALSE(parseInt("0x"));
    EXPECT_FALSE(parseInt("99999999999999999999999"));
}

TEST(Strutil, ParseIpv4)
{
    EXPECT_EQ(parseIpv4("10.0.0.1"), 0x0a000001u);
    EXPECT_EQ(parseIpv4("255.255.255.255"), 0xffffffffu);
    EXPECT_EQ(parseIpv4("0.0.0.0"), 0u);
    EXPECT_FALSE(parseIpv4("1.2.3"));
    EXPECT_FALSE(parseIpv4("1.2.3.4.5"));
    EXPECT_FALSE(parseIpv4("1.2.3.256"));
    EXPECT_FALSE(parseIpv4("a.b.c.d"));
}

TEST(Strutil, FormatIpv4RoundTrips)
{
    for (uint32_t addr : {0u, 0x0a000001u, 0xc0a80164u, 0xffffffffu})
        EXPECT_EQ(parseIpv4(formatIpv4(addr)), addr);
}

TEST(Strutil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(4643333), "4,643,333");
    EXPECT_EQ(withCommas(1234567890123ull), "1,234,567,890,123");
}

TEST(Strutil, ToLower)
{
    EXPECT_EQ(toLower("MiXeD"), "mixed");
    EXPECT_EQ(toLower("already"), "already");
}

} // namespace
