/**
 * @file
 * Unit tests for bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace
{

using namespace pb;

TEST(Bitops, BitsExtractsField)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 4, 8), 0xeeu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 32), 0xdeadbeefu);
    EXPECT_EQ(bits(0xffffffff, 5, 0), 0u);
}

TEST(Bitops, SingleBit)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(0x80000000u, 31), 1u);
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffff, 8, 8, 0), 0xffff00ffu);
    // Field is masked to its width.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1ff), 0xfu);
}

TEST(Bitops, InsertThenExtractRoundTrips)
{
    for (unsigned lo = 0; lo < 28; lo += 3) {
        for (uint32_t field = 0; field < 16; field++) {
            uint32_t v = insertBits(0xa5a5a5a5, lo, 4, field);
            EXPECT_EQ(bits(v, lo, 4), field) << "lo=" << lo;
        }
    }
}

TEST(Bitops, SignExtension)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x800000, 24), -8388608);
    EXPECT_EQ(sext(0x1234, 16), 0x1234);
}

TEST(Bitops, Alignment)
{
    EXPECT_TRUE(isAligned(0, 4));
    EXPECT_TRUE(isAligned(8, 4));
    EXPECT_FALSE(isAligned(2, 4));
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
    EXPECT_EQ(roundUp(0, 16), 0u);
}

TEST(Bitops, PrefixMask)
{
    EXPECT_EQ(prefixMask(0), 0u);
    EXPECT_EQ(prefixMask(8), 0xff000000u);
    EXPECT_EQ(prefixMask(24), 0xffffff00u);
    EXPECT_EQ(prefixMask(32), 0xffffffffu);
}

TEST(Bitops, CommonPrefixLen)
{
    EXPECT_EQ(commonPrefixLen(0, 0), 32u);
    EXPECT_EQ(commonPrefixLen(0x80000000, 0), 0u);
    EXPECT_EQ(commonPrefixLen(0xc0a80000, 0xc0a80001), 31u);
    EXPECT_EQ(commonPrefixLen(0x0a000000, 0x0b000000), 7u);
}

// Property: masking with prefixMask(l) never decreases common prefix.
TEST(Bitops, PrefixMaskConsistentWithCommonPrefix)
{
    uint32_t a = 0x12345678;
    uint32_t b = 0x12345679;
    unsigned l = commonPrefixLen(a, b);
    ASSERT_EQ(l, 31u);
    for (unsigned len = 0; len <= l; len++)
        EXPECT_EQ(a & prefixMask(len), b & prefixMask(len)) << len;
    EXPECT_NE(a & prefixMask(32), b & prefixMask(32));
}

TEST(Bitops, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xffffffff), 32u);
    EXPECT_EQ(popCount(0x80000001), 2u);
}

} // namespace
