/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"

namespace
{

using namespace pb;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LE(same, 1);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    const uint32_t buckets = 8;
    const int n = 80000;
    std::map<uint32_t, int> counts;
    for (int i = 0; i < n; i++)
        counts[rng.below(buckets)]++;
    for (uint32_t b = 0; b < buckets; b++) {
        EXPECT_NEAR(counts[b], n / static_cast<int>(buckets),
                    n / buckets / 10)
            << "bucket " << b;
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        uint32_t v = rng.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(9);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {};
    const int n = 40000;
    for (int i = 0; i < n; i++)
        counts[rng.weighted(weights)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedErrors)
{
    Rng rng(1);
    std::vector<double> zero = {0.0, 0.0};
    EXPECT_THROW(rng.weighted(zero), PanicError);
}

TEST(Rng, GeometricBounded)
{
    Rng rng(13);
    for (int i = 0; i < 1000; i++)
        ASSERT_LE(rng.geometric(0.5, 10), 10u);
    // p = 1 means always zero failures.
    EXPECT_EQ(rng.geometric(1.0, 100), 0u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace
