/**
 * @file
 * SPSC queue tests: FIFO order, close/drain semantics, move-only
 * payloads, and a two-thread producer/consumer transfer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/spscqueue.hh"

namespace
{

using pb::SpscQueue;

TEST(SpscQueue, FifoOrderSingleThread)
{
    SpscQueue<int> queue(4);
    EXPECT_EQ(queue.capacity(), 4u);
    for (int i = 0; i < 4; i++)
        queue.push(int(i));
    int out = -1;
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out, i);
    }
}

TEST(SpscQueue, CloseDrainsRemainingThenStops)
{
    SpscQueue<int> queue(8);
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_TRUE(queue.closed());
    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(queue.pop(out)) << "closed and drained";
}

TEST(SpscQueue, MoveOnlyPayload)
{
    SpscQueue<std::unique_ptr<int>> queue(2);
    queue.push(std::make_unique<int>(42));
    std::unique_ptr<int> out;
    ASSERT_TRUE(queue.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscQueue, TwoThreadTransferKeepsOrder)
{
    // Capacity far below the item count, so the producer hits the
    // full-queue wait path and the consumer hits the empty-queue
    // wait path many times.
    constexpr int items = 100'000;
    SpscQueue<int> queue(8);
    std::thread producer([&] {
        for (int i = 0; i < items; i++)
            queue.push(int(i));
        queue.close();
    });
    int expected = 0;
    int out = -1;
    while (queue.pop(out)) {
        ASSERT_EQ(out, expected);
        expected++;
    }
    producer.join();
    EXPECT_EQ(expected, items);
}

} // namespace
