/**
 * @file
 * SPSC queue tests: FIFO order, close/drain semantics, move-only
 * payloads, and a two-thread producer/consumer transfer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <ctime>
#include <memory>
#include <thread>

#include "common/spscqueue.hh"

namespace
{

using pb::SpscQueue;

TEST(SpscQueue, FifoOrderSingleThread)
{
    SpscQueue<int> queue(4);
    EXPECT_EQ(queue.capacity(), 4u);
    for (int i = 0; i < 4; i++)
        queue.push(int(i));
    int out = -1;
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out, i);
    }
}

TEST(SpscQueue, CloseDrainsRemainingThenStops)
{
    SpscQueue<int> queue(8);
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_TRUE(queue.closed());
    int out = 0;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(queue.pop(out)) << "closed and drained";
}

TEST(SpscQueue, MoveOnlyPayload)
{
    SpscQueue<std::unique_ptr<int>> queue(2);
    queue.push(std::make_unique<int>(42));
    std::unique_ptr<int> out;
    ASSERT_TRUE(queue.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscQueue, TwoThreadTransferKeepsOrder)
{
    // Capacity far below the item count, so the producer hits the
    // full-queue wait path and the consumer hits the empty-queue
    // wait path many times.
    constexpr int items = 100'000;
    SpscQueue<int> queue(8);
    std::thread producer([&] {
        for (int i = 0; i < items; i++)
            queue.push(int(i));
        queue.close();
    });
    int expected = 0;
    int out = -1;
    while (queue.pop(out)) {
        ASSERT_EQ(out, expected);
        expected++;
    }
    producer.join();
    EXPECT_EQ(expected, items);
}

namespace
{
/** CPU time consumed by the calling thread so far, in nanoseconds. */
long
threadCpuNs()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return ts.tv_sec * 1'000'000'000L + ts.tv_nsec;
}
} // namespace

TEST(SpscQueue, ParkedConsumerWakesOnPush)
{
    // A consumer blocked long past the spin budget must park, then
    // wake promptly when the producer finally pushes.
    SpscQueue<int> queue(4);
    std::thread consumer([&] {
        int out = 0;
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out, 7);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    queue.push(7);
    consumer.join();
}

TEST(SpscQueue, ParkedConsumerWakesOnClose)
{
    SpscQueue<int> queue(4);
    std::thread consumer([&] {
        int out = 0;
        EXPECT_FALSE(queue.pop(out))
            << "closed-empty queue must end the stream";
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    queue.close();
    consumer.join();
}

TEST(SpscQueue, ParkedProducerWakesOnPop)
{
    SpscQueue<int> queue(2);
    queue.push(1);
    queue.push(2);
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        queue.push(3); // full: spins out, then parks
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_FALSE(pushed.load()) << "push through a full queue?";
    int out = 0;
    ASSERT_TRUE(queue.pop(out));
    producer.join();
    EXPECT_TRUE(pushed.load());
    ASSERT_TRUE(queue.pop(out));
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 3);
}

TEST(SpscQueue, IdleConsumerBurnsAlmostNoCpu)
{
    // The daemon's idle contract: a worker parked on an empty queue
    // must not spin a core.  The consumer blocks for ~400 ms of wall
    // time; its *CPU* time over that window must be a small fraction
    // (the spin budget runs out in microseconds, then it sleeps).
    SpscQueue<int> queue(4);
    std::atomic<long> cpu_ns{-1};
    std::thread consumer([&] {
        long before = threadCpuNs();
        int out = 0;
        ASSERT_TRUE(queue.pop(out));
        cpu_ns.store(threadCpuNs() - before);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    queue.push(1);
    consumer.join();
    ASSERT_GE(cpu_ns.load(), 0);
    EXPECT_LT(cpu_ns.load(), 200'000'000L)
        << "an idle (parked) consumer burned most of the wait as "
           "CPU time: the yield-spin bug is back";
}

} // namespace
