/**
 * @file
 * Unit tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include "common/texttable.hh"
#include "common/logging.hh"

namespace
{

using namespace pb;

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t(3);
    t.header({"Name", "A", "B"});
    t.row({"x", "1", "22"});
    t.row({"yy", "333", "4"});
    std::string out = t.render();
    // Header present, separator line present, rows aligned.
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Right-aligned numeric columns: "333" under "A".
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < out.size()) {
        size_t eol = out.find('\n', pos);
        lines.push_back(out.substr(pos, eol - pos));
        pos = eol + 1;
    }
    ASSERT_EQ(lines.size(), 4u);
    // All lines equal width (trailing alignment for right columns).
    EXPECT_EQ(lines[1].size(), lines[0].size());
}

TEST(TextTable, ColumnCountEnforced)
{
    TextTable t(2);
    EXPECT_THROW(t.row({"only one"}), PanicError);
    EXPECT_THROW(t.header({"a", "b", "c"}), PanicError);
}

TEST(TextTable, ZeroColumnsRejected)
{
    EXPECT_THROW(TextTable(0), PanicError);
}

TEST(TextTable, RuleRendersSeparator)
{
    TextTable t(2);
    t.row({"a", "b"});
    t.rule();
    t.row({"c", "d"});
    std::string out = t.render();
    EXPECT_NE(out.find('-'), std::string::npos);
}

} // namespace
