/**
 * @file
 * Unit tests for the hash functions.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/hash.hh"

namespace
{

using namespace pb;

const uint8_t sample[] = "the quick brown fox jumps over the lazy dog";

TEST(Hash, JenkinsDeterministic)
{
    uint32_t a = jenkinsOaat(sample, sizeof(sample) - 1);
    uint32_t b = jenkinsOaat(sample, sizeof(sample) - 1);
    EXPECT_EQ(a, b);
    EXPECT_NE(jenkinsOaat(sample, sizeof(sample) - 1, 1), a)
        << "seed must perturb the hash";
}

TEST(Hash, JenkinsSensitiveToEveryByte)
{
    uint8_t buf[16] = {};
    uint32_t base = jenkinsOaat(buf, sizeof(buf));
    for (size_t i = 0; i < sizeof(buf); i++) {
        uint8_t copy[16] = {};
        copy[i] = 1;
        EXPECT_NE(jenkinsOaat(copy, sizeof(copy)), base) << "byte " << i;
    }
}

TEST(Hash, Fnv1aKnownVectors)
{
    // Standard FNV-1a test vectors.
    EXPECT_EQ(fnv1a32(nullptr, 0), 0x811c9dc5u);
    const uint8_t a[] = {'a'};
    EXPECT_EQ(fnv1a32(a, 1), 0xe40c292cu);
}

TEST(Hash, Crc32KnownVectors)
{
    // CRC-32("123456789") = 0xcbf43926 (IEEE).
    const uint8_t digits[] = "123456789";
    EXPECT_EQ(crc32(digits, 9), 0xcbf43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Hash, Crc32Seeded)
{
    // Chaining: crc(a+b) == crc(b, seed=crc(a)).
    const uint8_t data[] = "hello, packet world";
    size_t n = sizeof(data) - 1;
    uint32_t whole = crc32(data, n);
    uint32_t first = crc32(data, n / 2);
    uint32_t chained = crc32(data + n / 2, n - n / 2, first);
    EXPECT_EQ(whole, chained);
}

TEST(Hash, Mix32IsBijectiveOnSample)
{
    // A bijection has no collisions; check a large sample.
    std::set<uint32_t> seen;
    for (uint32_t i = 0; i < 100000; i++)
        ASSERT_TRUE(seen.insert(mix32(i * 2654435761u)).second) << i;
}

TEST(Hash, Prf32KeySeparation)
{
    int collisions = 0;
    for (uint32_t x = 0; x < 1000; x++) {
        if (prf32(1, x) == prf32(2, x))
            collisions++;
    }
    EXPECT_LE(collisions, 2) << "different keys should disagree";
}

TEST(Hash, Prf32Uniformity)
{
    // Count bits set across outputs; should be close to half.
    uint64_t ones = 0;
    const int n = 10000;
    for (int i = 0; i < n; i++)
        ones += __builtin_popcount(prf32(42, static_cast<uint32_t>(i)));
    double frac = static_cast<double>(ones) / (32.0 * n);
    EXPECT_NEAR(frac, 0.5, 0.01);
}

} // namespace
