/**
 * @file
 * XTEA cipher tests: known vectors, round-trip property, buffer
 * semantics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "payload/xtea.hh"

namespace
{

using namespace pb;
using namespace pb::payload;

const std::array<uint32_t, 4> stdKey = {0x00010203, 0x04050607,
                                        0x08090a0b, 0x0c0d0e0f};

TEST(Xtea, KnownVector)
{
    // Standard XTEA vector (libtomcrypt): E_k(4142434445464748) with
    // key 000102030405060708090a0b0c0d0e0f.
    Xtea cipher(stdKey);
    uint32_t v0 = 0x41424344;
    uint32_t v1 = 0x45464748;
    cipher.encryptBlock(v0, v1);
    EXPECT_EQ(v0, 0x497df3d0u);
    EXPECT_EQ(v1, 0x72612cb5u);
}

TEST(Xtea, ZeroVector)
{
    Xtea cipher({0, 0, 0, 0});
    uint32_t v0 = 0;
    uint32_t v1 = 0;
    cipher.encryptBlock(v0, v1);
    EXPECT_EQ(v0, 0xdee9d4d8u);
    EXPECT_EQ(v1, 0xf7131ed9u);
}

TEST(Xtea, DecryptInvertsEncrypt)
{
    Xtea cipher(stdKey);
    Rng rng(5);
    for (int i = 0; i < 2000; i++) {
        uint32_t a = rng.next();
        uint32_t b = rng.next();
        uint32_t v0 = a;
        uint32_t v1 = b;
        cipher.encryptBlock(v0, v1);
        EXPECT_FALSE(v0 == a && v1 == b) << "must change the block";
        cipher.decryptBlock(v0, v1);
        ASSERT_EQ(v0, a);
        ASSERT_EQ(v1, b);
    }
}

TEST(Xtea, BufferRoundTripAndTailPreserved)
{
    Xtea cipher(stdKey);
    Rng rng(9);
    for (size_t len : {0u, 7u, 8u, 9u, 16u, 60u, 77u}) {
        std::vector<uint8_t> data(len);
        for (auto &byte : data)
            byte = static_cast<uint8_t>(rng.below(256));
        std::vector<uint8_t> orig = data;

        size_t enc = cipher.encryptBuffer(data.data(), len);
        EXPECT_EQ(enc, len - len % 8);
        // Trailing fragment untouched.
        for (size_t i = enc; i < len; i++)
            EXPECT_EQ(data[i], orig[i]);
        size_t dec = cipher.decryptBuffer(data.data(), len);
        EXPECT_EQ(dec, enc);
        EXPECT_EQ(data, orig);
    }
}

TEST(Xtea, KeySensitivity)
{
    Xtea a(stdKey);
    Xtea b({0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e10});
    uint32_t av0 = 1;
    uint32_t av1 = 2;
    uint32_t bv0 = 1;
    uint32_t bv1 = 2;
    a.encryptBlock(av0, av1);
    b.encryptBlock(bv0, bv1);
    EXPECT_FALSE(av0 == bv0 && av1 == bv1);
}

} // namespace
