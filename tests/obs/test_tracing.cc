/**
 * @file
 * Event tracer tests: JSON round-trip, ring overflow semantics,
 * disabled no-op, concurrent emission (TSan exercises the memory
 * model), NPE32 sampling, fault-annotated spans, and serial vs
 * parallel per-engine span equivalence.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>

#include "core/multicore.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/tracing.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

/** Minimal handler: accept every packet. */
class AcceptApp : public core::Application
{
  public:
    std::string name() const override { return "accept"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    lw  t0, 0(a0)
    li  a1, 1
    sys 1
)");
    }
};

/** Handler that faults on every packet (wild load from address 0). */
class FaultApp : public core::Application
{
  public:
    std::string name() const override { return "always-fault"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    lw  t0, 0(zero)
    sys 2
)");
    }
};

/**
 * The tracer is a process-global singleton, so every test starts and
 * ends from a stopped, empty, default-configured state.
 */
class Tracing : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer &tracer = Tracer::instance();
        tracer.stop();
        tracer.reset();
        tracer.setCapacity(Tracer::defaultCapacity);
        tracer.setNpeSamplePeriod(0);
    }

    void TearDown() override { SetUp(); }
};

/** "engine" argument of a packet span, or UINT64_MAX when absent. */
uint64_t
engineArg(const TraceEvent &event)
{
    for (uint8_t i = 0; i < event.numArgs; i++) {
        if (std::strcmp(event.args[i].key, "engine") == 0 &&
            event.args[i].kind == TraceArg::Kind::U64)
            return event.args[i].u64;
    }
    return UINT64_MAX;
}

/** Complete "packet" spans per engine, and the set of tids used. */
std::map<uint64_t, uint64_t>
packetSpansPerEngine(const std::vector<TraceEvent> &events,
                     std::set<uint32_t> *tids = nullptr)
{
    std::map<uint64_t, uint64_t> per_engine;
    for (const TraceEvent &event : events) {
        if (event.phase != TracePhase::Complete ||
            std::strcmp(event.name, "packet") != 0)
            continue;
        per_engine[engineArg(event)]++;
        if (tids)
            tids->insert(event.tid);
    }
    return per_engine;
}

TEST_F(Tracing, DisabledEmitsNothing)
{
    EXPECT_FALSE(traceEnabled());
    {
        PB_TRACE_SPAN("test", "noop");
        PB_TRACE_INSTANT("test", "noop.instant");
        PB_TRACE_COUNTER("test", "noop.counter", 7);
    }
    EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(Tracing, SpansRecordDurationAndArgs)
{
    Tracer &tracer = Tracer::instance();
    tracer.start();
    {
        PB_TRACE_SPAN_NAMED(span, "test", "outer");
        EXPECT_TRUE(span.active());
        span.arg("count", uint64_t{42});
        span.arg("label", "hello");
    }
    traceInstant("test", "tick");
    traceCounter("test", "depth", 3);
    tracer.stop();

    auto events = tracer.collect();
    ASSERT_EQ(events.size(), 3u);
    // collect() sorts by timestamp; the span's ts is earliest.
    EXPECT_EQ(std::string(events[0].name), "outer");
    EXPECT_EQ(events[0].phase, TracePhase::Complete);
    EXPECT_EQ(events[0].numArgs, 2);
    EXPECT_EQ(std::string(events[0].args[0].key), "count");
    EXPECT_EQ(events[0].args[0].u64, 42u);
    EXPECT_EQ(std::string(events[0].args[1].str), "hello");
    EXPECT_EQ(events[1].phase, TracePhase::Instant);
    EXPECT_EQ(events[2].phase, TracePhase::Counter);
    EXPECT_EQ(events[2].args[0].u64, 3u);
}

TEST_F(Tracing, JsonRoundTripsThroughParser)
{
    Tracer &tracer = Tracer::instance();
    tracer.start();
    tracer.setThreadName("main");
    {
        PB_TRACE_SPAN_NAMED(span, "cat", "span \"quoted\"");
        span.arg("value", uint64_t{123});
        span.arg("text", "a\\b");
    }
    traceInstant("cat", "mark");
    traceCounter("cat", "gauge", 9);
    tracer.stop();

    std::ostringstream out;
    tracer.writeJson(out);
    JsonValue doc = JsonValue::parse(out.str());

    const auto &events = doc.at("traceEvents").asArray();
    // process_name + thread_name metadata + 3 recorded events.
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].at("ph").asString(), "M");
    EXPECT_EQ(events[0].at("name").asString(), "process_name");

    const JsonValue *span = nullptr;
    for (const auto &event : events) {
        if (event.at("ph").asString() == "X")
            span = &event;
    }
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->at("name").asString(), "span \"quoted\"");
    EXPECT_EQ(span->at("cat").asString(), "cat");
    EXPECT_GE(span->at("dur").asNumber(), 0.0);
    EXPECT_EQ(span->at("args").at("value").asNumber(), 123.0);
    EXPECT_EQ(span->at("args").at("text").asString(), "a\\b");
}

TEST_F(Tracing, OverflowKeepsNewestAndCountsDropped)
{
    Tracer &tracer = Tracer::instance();
    tracer.setCapacity(16);
    uint64_t dropped_before =
        defaultRegistry().counter("trace.dropped").value();
    tracer.start();
    for (uint64_t i = 0; i < 100; i++)
        traceCounter("test", "seq", i);
    tracer.stop();

    auto events = tracer.collect();
    ASSERT_EQ(events.size(), 16u);
    // Newest-kept overflow: the survivors are exactly 84..99.
    for (size_t i = 0; i < events.size(); i++)
        EXPECT_EQ(events[i].args[0].u64, 84 + i);
    EXPECT_EQ(tracer.droppedEvents(), 84u);
    // stop() publishes the overwrite count into the registry.
    EXPECT_EQ(defaultRegistry().counter("trace.dropped").value(),
              dropped_before + 84);
}

TEST_F(Tracing, ConcurrentEmissionIsSafe)
{
    Tracer &tracer = Tracer::instance();
    tracer.start();
    constexpr int threads = 4;
    constexpr int per_thread = 2'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; t++) {
        workers.emplace_back([t] {
            for (int i = 0; i < per_thread; i++) {
                PB_TRACE_SPAN_NAMED(span, "test", "work");
                span.arg("thread", static_cast<uint64_t>(t));
                PB_TRACE_COUNTER("test", "progress", i);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    tracer.stop();
    EXPECT_EQ(tracer.collect().size(),
              static_cast<size_t>(threads) * per_thread * 2);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST_F(Tracing, EnvironmentConfiguresSampling)
{
    setenv("PB_TRACE_SAMPLE", "7", 1);
    setenv("PB_TRACE_CAP", "32", 1);
    Tracer &tracer = Tracer::instance();
    tracer.configureFromEnv();
    unsetenv("PB_TRACE_SAMPLE");
    unsetenv("PB_TRACE_CAP");
    EXPECT_EQ(tracer.npeSamplePeriod(), 7u);

    // The capacity applies to rings created from here on.
    tracer.start();
    for (uint64_t i = 0; i < 100; i++)
        traceCounter("test", "seq", i);
    tracer.stop();
    EXPECT_EQ(tracer.collect().size(), 32u);
}

TEST_F(Tracing, PacketSpansAnnotateFaults)
{
    FaultApp app;
    core::BenchConfig cfg;
    cfg.faultPolicy = core::FaultPolicy::Quarantine;
    core::PacketBench bench(app, cfg);

    Tracer &tracer = Tracer::instance();
    tracer.start();
    net::SyntheticTrace trace(net::Profile::MRA, 5, 1);
    auto outcomes = bench.run(trace, 5);
    tracer.stop();

    ASSERT_EQ(outcomes.size(), 5u);
    for (const auto &outcome : outcomes)
        EXPECT_TRUE(outcome.faulted());

    uint64_t fault_spans = 0;
    for (const TraceEvent &event : tracer.collect()) {
        if (event.phase != TracePhase::Complete ||
            std::strcmp(event.name, "packet") != 0)
            continue;
        bool has_fault = false;
        for (uint8_t i = 0; i < event.numArgs; i++) {
            if (std::strcmp(event.args[i].key, "fault") == 0) {
                has_fault = true;
                EXPECT_EQ(std::string(event.args[i].str),
                          "sim-fault");
            }
        }
        EXPECT_TRUE(has_fault);
        fault_spans++;
    }
    EXPECT_EQ(fault_spans, 5u);
}

TEST_F(Tracing, NpeSamplerEmitsInstructionStream)
{
    AcceptApp app;
    core::PacketBench bench(app, {});

    Tracer &tracer = Tracer::instance();
    tracer.setNpeSamplePeriod(2); // sample packets 0 and 2
    tracer.start();
    net::SyntheticTrace trace(net::Profile::MRA, 3, 1);
    auto outcomes = bench.run(trace, 3);
    tracer.stop();

    uint64_t pc_samples = 0, mem_samples = 0;
    for (const TraceEvent &event : tracer.collect()) {
        if (event.phase != TracePhase::Counter)
            continue;
        if (std::strcmp(event.name, "npe.pc") == 0)
            pc_samples++;
        if (std::strncmp(event.name, "npe.mem.", 8) == 0)
            mem_samples++;
    }
    // The sampler sees exactly the instructions selective accounting
    // counted, for the two sampled packets (0 and 2) only.
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(pc_samples, outcomes[0].stats.instCount +
                              outcomes[2].stats.instCount);
    // The lw from packet memory is sampled on each sampled packet.
    EXPECT_GE(mem_samples, 2u);
}

TEST_F(Tracing, SerialAndParallelEmitIdenticalSpanCounts)
{
    auto factory = [] { return std::make_unique<AcceptApp>(); };
    constexpr uint32_t packets = 400;
    Tracer &tracer = Tracer::instance();

    core::BenchConfig serial_cfg;
    core::MultiCoreBench serial(factory, 4, serial_cfg);
    tracer.start();
    {
        net::SyntheticTrace trace(net::Profile::MRA, packets, 3);
        serial.run(trace, packets);
    }
    tracer.stop();
    std::set<uint32_t> serial_tids;
    auto serial_spans =
        packetSpansPerEngine(tracer.collect(), &serial_tids);
    tracer.reset();

    core::BenchConfig parallel_cfg;
    parallel_cfg.parallel = true;
    parallel_cfg.dispatchBatch = 8;
    core::MultiCoreBench parallel(factory, 4, parallel_cfg);
    tracer.start();
    {
        net::SyntheticTrace trace(net::Profile::MRA, packets, 3);
        parallel.run(trace, packets);
    }
    tracer.stop();
    std::set<uint32_t> parallel_tids;
    auto events = tracer.collect();
    auto parallel_spans = packetSpansPerEngine(events, &parallel_tids);

    // Same flow-pinned dispatch => identical per-engine span counts.
    EXPECT_EQ(serial_spans, parallel_spans);
    uint64_t total = 0;
    for (const auto &[engine, count] : parallel_spans)
        total += count;
    EXPECT_EQ(total, packets);

    // Serial runs on one thread; parallel spreads engines across
    // worker threads and emits dispatcher spans on its own row.
    EXPECT_EQ(serial_tids.size(), 1u);
    EXPECT_GT(parallel_tids.size(), 1u);
    uint64_t dispatch_spans = 0;
    for (const TraceEvent &event : events) {
        if (event.phase == TracePhase::Complete &&
            std::strcmp(event.name, "dispatch") == 0)
            dispatch_spans++;
    }
    EXPECT_GT(dispatch_spans, 0u);
}

} // namespace
