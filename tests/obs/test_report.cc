/**
 * @file
 * Run-report tests: a real PacketBench run over a synthetic trace
 * must serialize into valid JSON that round-trips through the parser
 * and carries at least ten distinct metrics — the artifact contract
 * every bench binary's `--report` flag relies on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "obs/json.hh"
#include "obs/report.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

/** Tiny app: reads one header word, then forwards. */
class ForwardApp : public core::Application
{
  public:
    std::string name() const override { return "forward"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        // a0 arrives holding the packet base address.
        return isa::Assembler(sim::layout::textBase).assemble(R"(
            main:
                lw  t1, 0(a0)
                li  a1, 1
                sys 1
        )");
    }
};

JsonValue
reportAfterRun()
{
    ForwardApp app;
    core::PacketBench bench(app);
    net::SyntheticTrace trace(net::Profile::LAN, 50, 1);
    bench.run(trace, 50);

    RunMeta meta;
    meta.tool = "pb_test_obs";
    meta.args = {"--packets=50"};
    meta.wallSeconds = 0.5;
    meta.set("trace", "LAN");

    std::stringstream out;
    writeRunReport(out, meta, defaultRegistry());
    return JsonValue::parse(out.str());
}

TEST(RunReport, RoundTripsThroughParser)
{
    JsonValue doc = reportAfterRun();
    EXPECT_EQ(doc.at("schema").asString(), "packetbench.report.v1");

    const JsonValue &meta = doc.at("meta");
    EXPECT_EQ(meta.at("tool").asString(), "pb_test_obs");
    EXPECT_EQ(meta.at("args").asArray().size(), 1u);
    EXPECT_EQ(meta.at("wall_seconds").asNumber(), 0.5);
    EXPECT_EQ(meta.at("trace").asString(), "LAN");
    EXPECT_FALSE(meta.at("git").asString().empty());
    // ISO-8601 UTC: "YYYY-MM-DDThh:mm:ssZ".
    const std::string &created = meta.at("created").asString();
    ASSERT_EQ(created.size(), 20u);
    EXPECT_EQ(created[10], 'T');
    EXPECT_EQ(created.back(), 'Z');
}

TEST(RunReport, CarriesAtLeastTenDistinctMetrics)
{
    JsonValue doc = reportAfterRun();
    size_t metrics = doc.at("counters").asObject().size() +
                     doc.at("gauges").asObject().size() +
                     doc.at("histograms").asObject().size();
    EXPECT_GE(metrics, 10u);

    // The headline framework metrics are all present.
    const JsonValue &counters = doc.at("counters");
    for (const char *name :
         {"pb.packets", "pb.insts", "pb.sent", "pb.dropped",
          "phase.simulate_ns", "trace.packets_read",
          "trace.bytes_read", "phase.trace_read_ns"}) {
        EXPECT_NE(counters.find(name), nullptr)
            << "missing counter " << name;
    }
    EXPECT_NE(doc.at("gauges").find("pb.sim_mips"), nullptr);
    EXPECT_NE(doc.at("histograms").find("pb.insts_per_packet"),
              nullptr);
}

TEST(RunReport, CountersAreExactAndConsistent)
{
    JsonValue doc = reportAfterRun();
    const JsonValue &counters = doc.at("counters");
    // Each reportAfterRun() call pushes 50 more packets through the
    // process-global registry; the published totals stay coherent.
    auto value = [&](const char *name) {
        return static_cast<uint64_t>(counters.at(name).asNumber());
    };
    EXPECT_GE(value("pb.packets"), 50u);
    EXPECT_EQ(value("pb.packets"), value("pb.sent") +
                                   value("pb.dropped"));
    EXPECT_GT(value("pb.insts"), value("pb.packets"));
    EXPECT_GE(value("trace.packets_read"), value("pb.packets"));
}

TEST(RunReport, HistogramsSerializeDistribution)
{
    JsonValue doc = reportAfterRun();
    const JsonValue &hist =
        doc.at("histograms").at("pb.insts_per_packet");
    auto count = static_cast<uint64_t>(hist.at("count").asNumber());
    EXPECT_GE(count, 50u);
    EXPECT_GT(hist.at("mean").asNumber(), 0.0);
    EXPECT_GE(hist.at("p99").asNumber(), hist.at("p50").asNumber());
    EXPECT_GE(hist.at("max").asNumber(), hist.at("min").asNumber());

    const auto &buckets = hist.at("buckets").asArray();
    ASSERT_FALSE(buckets.empty());
    uint64_t in_buckets = 0;
    double prev_le = -1.0;
    for (const JsonValue &bucket : buckets) {
        in_buckets +=
            static_cast<uint64_t>(bucket.at("count").asNumber());
        EXPECT_GT(bucket.at("le").asNumber(), prev_le);
        prev_le = bucket.at("le").asNumber();
    }
    EXPECT_EQ(in_buckets, count);
}

TEST(RunReport, FileWriterIsFatalOnBadPath)
{
    RunMeta meta;
    meta.tool = "t";
    EXPECT_THROW(writeRunReportFile("/nonexistent-dir/x.json", meta,
                                    defaultRegistry()),
                 FatalError);
}

TEST(RunReport, MetaFromArgvTakesBasename)
{
    char prog[] = "/usr/bin/bench_table2";
    char arg1[] = "--packets=7";
    char *argv[] = {prog, arg1, nullptr};
    RunMeta meta = RunMeta::fromArgv(2, argv);
    EXPECT_EQ(meta.tool, "bench_table2");
    ASSERT_EQ(meta.args.size(), 1u);
    EXPECT_EQ(meta.args[0], "--packets=7");
}

} // namespace
