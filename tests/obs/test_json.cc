/**
 * @file
 * JSON value tests: parsing, serialization, escapes, and errors.
 */

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "common/logging.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_EQ(JsonValue::parse("true").asBool(), true);
    EXPECT_EQ(JsonValue::parse("false").asBool(), false);
    EXPECT_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_EQ(JsonValue::parse("-1.5e2").asNumber(), -150.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNested)
{
    JsonValue v = JsonValue::parse(R"(
        {
            "name": "pb",
            "counts": [1, 2, 3],
            "meta": {"ok": true, "none": null}
        }
    )");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("name").asString(), "pb");
    const auto &counts = v.at("counts").asArray();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[2].asNumber(), 3.0);
    EXPECT_EQ(v.at("meta").at("ok").asBool(), true);
    EXPECT_TRUE(v.at("meta").at("none").isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, EscapesRoundTrip)
{
    JsonValue v = JsonValue::parse(
        R"("tab\t quote\" back\\ nl\n unicodeé")");
    EXPECT_EQ(v.asString(), "tab\t quote\" back\\ nl\n unicode\xc3\xa9");
    // Dump and reparse preserve the value.
    JsonValue again = JsonValue::parse(v.dump());
    EXPECT_EQ(again.asString(), v.asString());
}

TEST(Json, SurrogatePairsDecodeToUtf8)
{
    // U+1F600 as a surrogate pair.
    JsonValue v = JsonValue::parse(R"("😀")");
    EXPECT_EQ(v.asString(), "\xf0\x9f\x98\x80");
}

TEST(Json, DumpIsDeterministicAndOrdered)
{
    JsonValue::Object obj;
    obj.emplace_back("z", JsonValue(1));
    obj.emplace_back("a", JsonValue("x"));
    JsonValue v{std::move(obj)};
    // Insertion order is preserved (not sorted).
    EXPECT_EQ(v.dump(), R"({"z":1,"a":"x"})");
    EXPECT_EQ(JsonValue::parse(v.dump(2)).dump(), v.dump());
}

TEST(Json, IntegersSurviveRoundTrip)
{
    // 2^53 - 1, the largest integer double represents exactly.
    JsonValue v = JsonValue::parse("9007199254740991");
    EXPECT_EQ(static_cast<uint64_t>(v.asNumber()),
              9007199254740991ull);
    EXPECT_EQ(v.dump(), "9007199254740991");
}

TEST(Json, MalformedInputIsFatal)
{
    EXPECT_THROW(JsonValue::parse(""), FatalError);
    EXPECT_THROW(JsonValue::parse("{"), FatalError);
    EXPECT_THROW(JsonValue::parse("[1,]"), FatalError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), FatalError);
    EXPECT_THROW(JsonValue::parse("{} trailing"), FatalError);
    EXPECT_THROW(JsonValue::parse("nul"), FatalError);
}

TEST(Json, TypeMismatchIsFatal)
{
    JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW(v.asObject(), FatalError);
    EXPECT_THROW(v.asString(), FatalError);
    EXPECT_THROW(v.at("key"), FatalError);
}

TEST(Json, JsonEscapeControlChars)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
    EXPECT_EQ(jsonEscape("plain"), "plain");
}

} // namespace
