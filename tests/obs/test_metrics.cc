/**
 * @file
 * Metrics registry tests: counter/gauge/histogram semantics,
 * deterministic snapshots, kind safety, timers, and the macros.
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

TEST(Metrics, CounterAddsAndReads)
{
    Registry reg;
    Counter &c = reg.counter("test.events");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Find-or-create returns the same object.
    EXPECT_EQ(&reg.counter("test.events"), &c);
}

TEST(Metrics, GaugeHoldsLastValue)
{
    Registry reg;
    Gauge &g = reg.gauge("test.rate");
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo)
{
    Registry reg;
    Histogram &h = reg.histogram("test.sizes");
    // Bucket 0 holds zeros, bucket 1 holds {1}, bucket i (i >= 2)
    // holds (2^(i-2), 2^(i-1)] — exact powers of two sit on their
    // own upper edge.
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(3);
    h.observe(1024);

    Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 1030u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 1024u);
    EXPECT_DOUBLE_EQ(snap.mean(), 206.0);
    ASSERT_EQ(snap.buckets.size(), 12u); // trimmed after bucket 11
    EXPECT_EQ(snap.buckets[0], 1u);      // 0
    EXPECT_EQ(snap.buckets[1], 1u);      // 1
    EXPECT_EQ(snap.buckets[2], 1u);      // 2 (le=2)
    EXPECT_EQ(snap.buckets[3], 1u);      // 3 (le=4)
    EXPECT_EQ(snap.buckets[11], 1u);     // 1024 (le=1024)
}

TEST(Metrics, HistogramQuantiles)
{
    Registry reg;
    Histogram &h = reg.histogram("test.q");
    for (int i = 0; i < 99; i++)
        h.observe(5); // bucket 4, upper bound 8
    h.observe(1'000'000); // bucket 21, upper bound 2^20

    Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.quantile(0.5), 8u);
    EXPECT_EQ(snap.quantile(0.0), 8u);
    EXPECT_EQ(snap.quantile(1.0), 1u << 20);

    Histogram::Snapshot empty = reg.histogram("test.empty").snapshot();
    EXPECT_EQ(empty.quantile(0.5), 0u);
}

TEST(Metrics, HistogramPowerOfTwoBoundaries)
{
    // Regression: an earlier revision bucketed by raw bit width,
    // which pushed a sample of exactly 2^k one bucket too high.
    // Pin the edges: 2^k lands in the bucket whose inclusive upper
    // bound is 2^k, and 2^k + 1 lands in the next one up.
    Registry reg;
    for (size_t k = 1; k < 63; k++) {
        Histogram &h = reg.histogram("test.edge" + std::to_string(k));
        uint64_t edge = uint64_t{1} << k;
        h.observe(edge);
        h.observe(edge + 1);
        Histogram::Snapshot snap = h.snapshot();
        ASSERT_EQ(snap.buckets.size(), k + 3);
        EXPECT_EQ(snap.buckets[k + 1], 1u) << "2^" << k;
        EXPECT_EQ(snap.buckets[k + 2], 1u) << "2^" << k << " + 1";
        EXPECT_EQ(Histogram::bucketUpperBound(k + 1), edge);
    }
}

TEST(Metrics, HistogramNeverSaturates)
{
    Registry reg;
    Histogram &h = reg.histogram("test.wide");
    h.observe(UINT64_MAX);
    Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_EQ(snap.max, UINT64_MAX);
    EXPECT_EQ(snap.buckets.size(), Histogram::numBuckets);
}

TEST(Metrics, BucketUpperBounds)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 2u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 512u);
    EXPECT_EQ(Histogram::bucketUpperBound(64), uint64_t{1} << 63);
    // The true edge of the last bucket is 2^64, clamped to
    // UINT64_MAX because it does not fit.
    EXPECT_EQ(Histogram::bucketUpperBound(65), UINT64_MAX);
}

TEST(Metrics, SnapshotIsSortedAndComplete)
{
    Registry reg;
    reg.counter("zz.last").add(1);
    reg.gauge("aa.first").set(2.0);
    reg.histogram("mm.middle").observe(3);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "aa.first");
    EXPECT_EQ(snap[0].kind, MetricKind::Gauge);
    EXPECT_EQ(snap[0].gauge, 2.0);
    EXPECT_EQ(snap[1].name, "mm.middle");
    EXPECT_EQ(snap[1].kind, MetricKind::Histogram);
    EXPECT_EQ(snap[1].hist.count, 1u);
    EXPECT_EQ(snap[2].name, "zz.last");
    EXPECT_EQ(snap[2].kind, MetricKind::Counter);
    EXPECT_EQ(snap[2].counter, 1u);
}

TEST(Metrics, KindMismatchPanics)
{
    Registry reg;
    reg.counter("test.metric");
    EXPECT_THROW(reg.gauge("test.metric"), PanicError);
    EXPECT_THROW(reg.histogram("test.metric"), PanicError);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations)
{
    Registry reg;
    Counter &c = reg.counter("test.c");
    c.add(5);
    reg.gauge("test.g").set(1.5);
    reg.histogram("test.h").observe(9);

    reg.reset();
    EXPECT_EQ(reg.size(), 3u);
    // The cached reference is still the live metric after reset.
    EXPECT_EQ(c.value(), 0u);
    c.add(2);
    EXPECT_EQ(reg.counter("test.c").value(), 2u);
    EXPECT_EQ(reg.gauge("test.g").value(), 0.0);
    EXPECT_EQ(reg.histogram("test.h").snapshot().count, 0u);
}

TEST(Metrics, CountersAreThreadSafe)
{
    Registry reg;
    Counter &c = reg.counter("test.mt");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10'000; i++)
                c.add();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(), 40'000u);
}

TEST(Metrics, ScopedTimerAccumulates)
{
    Registry reg;
    Counter &ns = reg.counter("test.ns");
    {
        ScopedTimer timer(ns);
        // Burn a little time so elapsedNs() is visibly nonzero.
        volatile int sink = 0;
        for (int i = 0; i < 1000; i++)
            sink = sink + i;
        EXPECT_GE(timer.elapsedNs(), 0u);
    }
    uint64_t first = ns.value();
    EXPECT_GT(first, 0u);
    {
        ScopedTimer timer(ns);
    }
    EXPECT_GE(ns.value(), first);
}

TEST(Metrics, MacrosHitDefaultRegistry)
{
    uint64_t before =
        defaultRegistry().counter("test.macro_events").value();
    PB_COUNTER("test.macro_events");
    PB_COUNTER_ADD("test.macro_events", 9);
    EXPECT_EQ(defaultRegistry().counter("test.macro_events").value(),
              before + 10);

    uint64_t ns_before =
        defaultRegistry().counter("test.macro_ns").value();
    {
        PB_SCOPED_TIMER("test.macro_ns");
    }
    EXPECT_GE(defaultRegistry().counter("test.macro_ns").value(),
              ns_before);
}

TEST(Metrics, KindNames)
{
    EXPECT_STREQ(metricKindName(MetricKind::Counter), "counter");
    EXPECT_STREQ(metricKindName(MetricKind::Gauge), "gauge");
    EXPECT_STREQ(metricKindName(MetricKind::Histogram), "histogram");
}

} // namespace
