/**
 * @file
 * Disabled-tracing overhead microbenchmark: instrumentation points
 * cost one relaxed load and a branch when the tracer is off, so a
 * packet loop carrying *extra* disabled macros must run within 2% of
 * the same loop without them.  Min-of-trials on interleaved runs
 * keeps the comparison stable under scheduler noise.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "obs/tracing.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

/** Table 2-style header-processing handler: checksum the header. */
class HeaderApp : public core::Application
{
  public:
    std::string name() const override { return "header-sum"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    li  t0, 0
    li  t1, 0
loop:
    lw  t2, 0(a0)
    add t1, t1, t2
    addi a0, a0, 4
    addi t0, t0, 4
    blt t0, a1, loop
    li  a1, 1
    sys 1
)");
    }
};

uint64_t
timePacketLoop(core::PacketBench &bench, uint32_t packets,
               bool extra_macros)
{
    net::SyntheticTrace trace(net::Profile::MRA, packets, 11);
    auto start = std::chrono::steady_clock::now();
    for (uint32_t i = 0; i < packets; i++) {
        auto packet = trace.next();
        if (!packet)
            break;
        if (extra_macros) {
            // The marginal cost under test: additional disabled
            // instrumentation points in the per-packet loop.
            PB_TRACE_SPAN("bench", "extra");
            PB_TRACE_INSTANT("bench", "extra.instant");
            PB_TRACE_COUNTER("bench", "extra.counter", i);
            bench.processPacket(*packet);
        } else {
            bench.processPacket(*packet);
        }
    }
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

TEST(TracingOverhead, DisabledMacrosStayUnderTwoPercent)
{
    ASSERT_FALSE(traceEnabled());
    HeaderApp app;
    core::PacketBench bench(app, {});

    constexpr uint32_t packets = 1'500;
    constexpr int trials = 6;
    // Warm-up: fault in code paths, caches, and the first-touch cost
    // of simulated memory before timing anything.
    timePacketLoop(bench, packets, false);

    uint64_t base_min = UINT64_MAX, extra_min = UINT64_MAX;
    for (int t = 0; t < trials; t++) {
        base_min =
            std::min(base_min, timePacketLoop(bench, packets, false));
        extra_min = std::min(extra_min,
                             timePacketLoop(bench, packets, true));
    }

    double overhead = static_cast<double>(extra_min) /
                          static_cast<double>(base_min) -
                      1.0;
    // <2% is the acceptance bound; the measured cost of three
    // disabled instrumentation points is a handful of nanoseconds
    // against a multi-microsecond simulated packet.
    EXPECT_LT(overhead, 0.02)
        << "base " << base_min << " ns vs extra " << extra_min
        << " ns";
}

} // namespace
