/**
 * @file
 * Hot-spot profiler tests against a program whose exact execution
 * profile is known: a three-block countdown loop.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "obs/profiler.hh"
#include "sim/accounting.hh"
#include "sim/bblock.hh"
#include "sim/cpu.hh"
#include "sim/memmap.hh"
#include "sim/timing.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

/**
 * main: addi  (block 0, runs once)
 * loop: addi, bnez  (block 1, runs three times)
 *       sys   (block 2, runs once)
 *
 * 8 dynamic instructions total.
 */
constexpr const char *loopSrc = R"(
    main:
        addi t0, zero, 3
    loop:
        addi t0, t0, -1
        bnez t0, loop
        sys 0
)";

class ProfilerTest : public ::testing::Test
{
  protected:
    ProfilerTest()
        : prog(isa::Assembler(0x1000).assemble(loopSrc, "proftest")),
          blocks(prog), cpu(mem)
    {
        cpu.loadProgram(prog);
    }

    isa::Program prog;
    sim::BlockMap blocks;
    sim::Memory mem;
    sim::Cpu cpu;
};

TEST_F(ProfilerTest, ExactPerPcCounts)
{
    HotSpotProfiler prof(prog, blocks);
    cpu.setObserver(&prof);
    cpu.run(prog.entry());
    prof.flush();

    EXPECT_EQ(prof.instCount(0x1000), 1u); // addi t0, zero, 3
    EXPECT_EQ(prof.instCount(0x1004), 3u); // addi t0, t0, -1
    EXPECT_EQ(prof.instCount(0x1008), 3u); // bnez
    EXPECT_EQ(prof.instCount(0x100c), 1u); // sys
    EXPECT_EQ(prof.totalInsts(), 8u);
    // Without a timer, cycles mirror instructions (CPI 1).
    EXPECT_EQ(prof.totalCycles(), 8u);
    EXPECT_EQ(prof.cycleCount(0x1004), 3u);
}

TEST_F(ProfilerTest, HottestBlockRankedFirst)
{
    HotSpotProfiler prof(prog, blocks);
    cpu.setObserver(&prof);
    cpu.run(prog.entry());
    prof.flush();

    auto ranked = prof.rankedBlocks();
    ASSERT_EQ(ranked.size(), 3u); // all three blocks executed
    // The loop body absorbs 6 of 8 instructions and must lead.
    EXPECT_EQ(ranked[0].startAddr, 0x1004u);
    EXPECT_EQ(ranked[0].numInsts, 2u);
    EXPECT_EQ(ranked[0].insts, 6u);
    EXPECT_EQ(ranked[0].entries, 3u);
    // The two single-shot blocks follow, each with one instruction.
    EXPECT_EQ(ranked[1].insts, 1u);
    EXPECT_EQ(ranked[1].entries, 1u);
    EXPECT_EQ(ranked[2].insts, 1u);
    // Entries sum to one per block entry event.
    uint64_t entries = 0;
    for (const auto &b : ranked)
        entries += b.entries;
    EXPECT_EQ(entries, 5u);
}

TEST_F(ProfilerTest, AccumulatesAcrossRuns)
{
    HotSpotProfiler prof(prog, blocks);
    cpu.setObserver(&prof);
    for (int i = 0; i < 4; i++) {
        cpu.resetRegs();
        cpu.run(prog.entry());
    }
    prof.flush();
    EXPECT_EQ(prof.totalInsts(), 32u);
    EXPECT_EQ(prof.instCount(0x1004), 12u);
    EXPECT_EQ(prof.rankedBlocks()[0].entries, 12u);
}

TEST_F(ProfilerTest, TimerAttributesCycles)
{
    // A longer countdown, so the loop's repeated cost dwarfs the
    // one-time cold-cache penalties charged to the entry block.
    isa::Program long_prog = isa::Assembler(0x1000).assemble(R"(
        main:
            addi t0, zero, 50
        loop:
            addi t0, t0, -1
            bnez t0, loop
            sys 0
    )", "proftest50");
    sim::BlockMap long_blocks(long_prog);
    cpu.loadProgram(long_prog);

    HotSpotProfiler prof(long_prog, long_blocks);
    sim::PipelineTimer timer;
    // Profiler first, timer second: the cycles accumulating between
    // two profiler observations are the previous instruction's cost.
    sim::FanoutObserver fanout;
    fanout.add(&prof);
    fanout.add(&timer);
    prof.attachTimer(&timer);

    cpu.setObserver(&fanout);
    cpu.run(long_prog.entry());
    prof.flush();

    EXPECT_EQ(prof.totalInsts(), 102u); // 1 + 50*2 + 1
    // Every cycle the timer modeled is attributed to some PC.
    EXPECT_EQ(prof.totalCycles(), timer.cycles());
    EXPECT_GE(prof.totalCycles(), prof.totalInsts());
    // Each instruction costs at least one cycle.
    for (uint32_t addr = 0x1000; addr <= 0x100c; addr += 4)
        EXPECT_GE(prof.cycleCount(addr), prof.instCount(addr));
    // The loop block ranks first with cycles attached.
    auto ranked = prof.rankedBlocks();
    EXPECT_EQ(ranked[0].startAddr, 0x1004u);
    EXPECT_EQ(ranked[0].insts, 100u);
    EXPECT_GE(ranked[0].cycles, ranked[0].insts);
}

TEST_F(ProfilerTest, RenderAnnotatesDisassembly)
{
    HotSpotProfiler prof(prog, blocks);
    cpu.setObserver(&prof);
    cpu.run(prog.entry());
    prof.flush();

    std::string report = prof.render();
    EXPECT_NE(report.find("8 insts"), std::string::npos);
    EXPECT_NE(report.find("3 of 3 blocks executed"),
              std::string::npos);
    // Ranked table lists the loop block's address first.
    EXPECT_NE(report.find("@0x00001004"), std::string::npos);
    // Annotated disassembly shows the loop instructions (bnez is a
    // pseudo; the disassembler emits the canonical bne).
    EXPECT_NE(report.find("addi"), std::string::npos);
    EXPECT_NE(report.find("bne"), std::string::npos);
    // Rank 1 covers 75% of the cycles (6 of 8).
    EXPECT_NE(report.find("75.0%"), std::string::npos);
}

TEST_F(ProfilerTest, RenderOnEmptyProfile)
{
    HotSpotProfiler prof(prog, blocks);
    std::string report = prof.render();
    EXPECT_NE(report.find("0 insts"), std::string::npos);
    EXPECT_TRUE(prof.rankedBlocks().empty());
}

TEST_F(ProfilerTest, ResetClearsSamples)
{
    HotSpotProfiler prof(prog, blocks);
    cpu.setObserver(&prof);
    cpu.run(prog.entry());
    prof.flush();
    prof.reset();
    EXPECT_EQ(prof.totalInsts(), 0u);
    EXPECT_EQ(prof.instCount(0x1004), 0u);
    EXPECT_TRUE(prof.rankedBlocks().empty());
}

TEST_F(ProfilerTest, OutOfProgramPcPanics)
{
    HotSpotProfiler prof(prog, blocks);
    EXPECT_THROW(prof.instCount(0x2000), PanicError);
}

} // namespace
