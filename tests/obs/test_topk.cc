/**
 * @file
 * Space-saving top-K tests: exact tracking of heavy flows on skewed
 * traffic, the est - error <= true <= est bound on adversarial
 * (uniform churn) traffic, the N/capacity inclusion guarantee, and
 * the reporting surface (ordering, truncation, formatting).
 */

#include <gtest/gtest.h>

#include <map>

#include "obs/topk.hh"

namespace
{

using namespace pb::obs;

FlowId
flowIdFor(uint32_t n)
{
    FlowId id;
    id.src = 0x0a000000u | n;  // 10.0.x.y
    id.dst = 0xc0a80001u;      // 192.168.0.1
    id.srcPort = static_cast<uint16_t>(1024 + n);
    id.dstPort = 80;
    id.proto = 6;
    return id;
}

TEST(FlowTopK, SkewedHeavyHittersAreExact)
{
    FlowTopK topk(8);
    // Four heavy flows, 100 packets each, established first...
    for (int round = 0; round < 100; round++)
        for (uint64_t f = 0; f < 4; f++)
            topk.observe(f, flowIdFor(static_cast<uint32_t>(f)), 64,
                         false);
    // ...then 50 one-packet flows churning the light half of the
    // table.
    for (uint64_t f = 100; f < 150; f++)
        topk.observe(f, flowIdFor(static_cast<uint32_t>(f)), 64,
                     false);

    auto top = topk.top(4);
    ASSERT_EQ(top.size(), 4u);
    for (const auto &e : top) {
        // The heavy flows were never evicted: tracked exactly, with
        // no inherited overcount.
        EXPECT_LT(e.key, 4u);
        EXPECT_EQ(e.packets, 100u);
        EXPECT_EQ(e.error, 0u);
        EXPECT_EQ(e.bytes, 6400u);
        EXPECT_EQ(e.faults, 0u);
    }
    EXPECT_EQ(topk.observedPackets(), 450u);
}

TEST(FlowTopK, AdversarialChurnKeepsErrorBound)
{
    constexpr uint64_t kFlows = 40;
    constexpr int kRounds = 5;
    FlowTopK topk(4);
    std::map<uint64_t, uint64_t> truth;
    // Round-robin over many distinct flows: worst case for a
    // capacity-4 table — every miss evicts and inherits.
    for (int round = 0; round < kRounds; round++) {
        for (uint64_t f = 0; f < kFlows; f++) {
            topk.observe(f, flowIdFor(static_cast<uint32_t>(f)), 64,
                         false);
            truth[f]++;
        }
    }

    auto entries = topk.top();
    ASSERT_LE(entries.size(), 4u);
    for (const auto &e : entries) {
        uint64_t true_count = truth[e.key];
        // The space-saving invariant: the estimate only ever
        // overcounts, and by at most the recorded error.
        EXPECT_GE(e.packets, true_count) << "flow " << e.key;
        EXPECT_LE(e.packets - e.error, true_count)
            << "flow " << e.key;
    }
    EXPECT_EQ(topk.observedPackets(), kFlows * kRounds);
}

TEST(FlowTopK, FlowsAboveThresholdAreAlwaysTracked)
{
    FlowTopK topk(4);
    // 60 of 200 packets belong to flow 999 — far above N/capacity =
    // 50 — interleaved with uniform churn trying to push it out.
    uint64_t next_light = 1000;
    for (int i = 0; i < 200; i++) {
        if (i % 10 < 3) {
            topk.observe(999, flowIdFor(999), 128, false);
        } else {
            topk.observe(next_light,
                         flowIdFor(static_cast<uint32_t>(next_light)),
                         64, false);
            next_light++;
        }
    }
    bool found = false;
    for (const auto &e : topk.top())
        found = found || e.key == 999;
    EXPECT_TRUE(found)
        << "heavy flow evicted despite exceeding N/capacity";
}

TEST(FlowTopK, TopIsSortedAndTruncated)
{
    FlowTopK topk(8);
    for (uint64_t f = 0; f < 5; f++)
        for (uint64_t n = 0; n <= f; n++)
            topk.observe(f, flowIdFor(static_cast<uint32_t>(f)), 64,
                         false);

    auto all = topk.top();
    ASSERT_EQ(all.size(), 5u);
    for (size_t i = 1; i < all.size(); i++)
        EXPECT_GE(all[i - 1].packets, all[i].packets);
    EXPECT_EQ(all[0].key, 4u);

    auto two = topk.top(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].key, 4u);
    EXPECT_EQ(two[1].key, 3u);
}

TEST(FlowTopK, FaultsAndBytesAccumulatePerEntry)
{
    FlowTopK topk(4);
    topk.observe(7, flowIdFor(7), 100, false);
    topk.observe(7, flowIdFor(7), 200, true);
    topk.observe(7, flowIdFor(7), 300, true);

    auto top = topk.top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].packets, 3u);
    EXPECT_EQ(top[0].bytes, 600u);
    EXPECT_EQ(top[0].faults, 2u);
}

TEST(FlowTopK, ResetDropsAllState)
{
    FlowTopK topk(4);
    topk.observe(1, flowIdFor(1), 64, false);
    topk.reset();
    EXPECT_TRUE(topk.top().empty());
    EXPECT_EQ(topk.observedPackets(), 0u);
}

TEST(FlowTopK, FormatFlowIdRendersTuple)
{
    FlowId id;
    id.src = 0x0a000001;  // 10.0.0.1
    id.dst = 0xc0a80102;  // 192.168.1.2
    id.srcPort = 1234;
    id.dstPort = 80;
    id.proto = 6;
    EXPECT_EQ(formatFlowId(id), "10.0.0.1:1234 > 192.168.1.2:80/6");
}

} // namespace
