/**
 * @file
 * Sliding-window aggregation tests: bucket rotation, idle-gap aging,
 * ring-slot reclamation after long gaps, and the divergence between
 * rolling and since-start quantiles under a workload shift.
 *
 * All timestamps are simulated (the classes take caller-provided
 * nanoseconds), so the tests are exact and wall-clock independent.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/window.hh"

namespace
{

using namespace pb::obs;

constexpr uint64_t kMs = 1'000'000;
constexpr uint64_t kSecond = 1'000'000'000;

TEST(WindowedRate, EmptyEstimatorReportsZero)
{
    WindowedRate r;
    EXPECT_EQ(r.windowCount(0), 0u);
    EXPECT_EQ(r.rate(5 * kSecond), 0.0);
    EXPECT_EQ(r.total(), 0u);
}

TEST(WindowedRate, SteadyStreamMatchesEventRate)
{
    WindowedRate r; // 1 s window, 16 buckets
    // One event per millisecond across exactly one window.
    for (uint64_t t = 0; t < 1000; t++)
        r.add(1, t * kMs);
    uint64_t now = 999 * kMs;
    EXPECT_EQ(r.windowCount(now), 1000u);
    EXPECT_NEAR(r.rate(now), 1000.0, 1.0);
    EXPECT_EQ(r.total(), 1000u);
}

TEST(WindowedRate, BucketRotationAgesOutOldEvents)
{
    WindowedRate r(kSecond);
    // A 160-event burst inside the first 100 ms (the first couple of
    // ring buckets).
    for (uint64_t i = 0; i < 160; i++)
        r.add(1, i * 625'000);

    // Still fully inside the window half a window later...
    EXPECT_EQ(r.windowCount(500 * kMs), 160u);
    // ...and fully aged out once the window slides past the burst.
    EXPECT_EQ(r.windowCount(1200 * kMs), 0u);
    EXPECT_EQ(r.rate(1200 * kMs), 0.0);
    // The since-start total survives the slide.
    EXPECT_EQ(r.total(), 160u);
}

TEST(WindowedRate, IdleGapReclaimsStaleRingSlots)
{
    WindowedRate r(kSecond);
    for (uint64_t i = 0; i < 160; i++)
        r.add(1, i * 625'000);

    // Resume after a multi-window idle gap: the new events land in
    // ring slots that still physically hold the old burst's buckets,
    // which rotation must reclaim rather than double-count.
    r.add(7, 5 * kSecond);
    EXPECT_EQ(r.windowCount(5 * kSecond), 7u);
    EXPECT_NEAR(r.rate(5 * kSecond), 7.0, 0.01);
    EXPECT_EQ(r.total(), 167u);
}

TEST(WindowedRate, ResetZeroesEverything)
{
    WindowedRate r;
    r.add(5, 10 * kMs);
    r.reset();
    EXPECT_EQ(r.windowCount(10 * kMs), 0u);
    EXPECT_EQ(r.total(), 0u);
}

TEST(WindowedHistogram, EmptySnapshotHasNoSamples)
{
    WindowedHistogram wh;
    Histogram::Snapshot snap = wh.snapshot(0);
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.quantile(0.99), 0u);
}

TEST(WindowedHistogram, RollingQuantileDivergesFromSinceStart)
{
    WindowedHistogram wh; // 1 s window
    Registry reg;
    Histogram &cumulative = reg.histogram("test.samples");

    // Phase 1: a cheap-packet regime (samples around 100) in the
    // first half second.
    for (uint64_t i = 0; i < 1000; i++) {
        wh.observe(100, i * 500'000);
        cumulative.observe(100);
    }
    // Phase 2: the workload shifts to expensive packets (samples
    // around 100'000) between 2.0 s and 2.5 s.
    for (uint64_t i = 0; i < 1000; i++) {
        wh.observe(100'000, 2 * kSecond + i * 500'000);
        cumulative.observe(100'000);
    }

    // The rolling view only sees the new regime...
    Histogram::Snapshot rolling = wh.snapshot(2500 * kMs);
    EXPECT_EQ(rolling.count, 1000u);
    EXPECT_EQ(rolling.min, 100'000u);
    EXPECT_GT(rolling.quantile(0.5), 50'000u);

    // ...while the since-start histogram still mixes both phases:
    // its median sits in the old cheap regime.
    Histogram::Snapshot all = cumulative.snapshot();
    EXPECT_EQ(all.count, 2000u);
    EXPECT_EQ(all.min, 100u);
    EXPECT_LT(all.quantile(0.5), 1000u);
    // Same bucket edges: an identical single-phase population gives
    // identical quantiles in both views.
    EXPECT_EQ(rolling.quantile(0.99),
              Histogram::bucketUpperBound(
                  Histogram::bucketIndex(100'000)));
}

TEST(WindowedHistogram, OldSlicesAgeOut)
{
    WindowedHistogram wh;
    for (uint64_t i = 0; i < 64; i++)
        wh.observe(42, i * kMs);
    EXPECT_EQ(wh.snapshot(500 * kMs).count, 64u);
    // Two windows later nothing remains.
    EXPECT_EQ(wh.snapshot(2500 * kMs).count, 0u);
}

TEST(WindowedHistogram, SnapshotMergesAcrossSlices)
{
    WindowedHistogram wh;
    // Samples spread across distinct slices of the same window.
    wh.observe(1, 50 * kMs);
    wh.observe(8, 300 * kMs);
    wh.observe(64, 700 * kMs);
    Histogram::Snapshot snap = wh.snapshot(900 * kMs);
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 73u);
    EXPECT_EQ(snap.min, 1u);
    EXPECT_EQ(snap.max, 64u);
}

} // namespace
