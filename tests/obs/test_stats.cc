/**
 * @file
 * Stats-pump tests: concurrent pump-vs-writer stress over the
 * seqlocked windows and the mutexed flow table (the TSan target for
 * the telemetry plane), NDJSON well-formedness and monotonicity, the
 * final-record-on-stop guarantee, the live Prometheus rewrite, and
 * the disabled-telemetry overhead bound (the stats analogue of
 * TracingOverhead).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/logging.hh"
#include "core/packetbench.hh"
#include "isa/assembler.hh"
#include "net/tracegen.hh"
#include "obs/stats.hh"
#include "sim/memmap.hh"

namespace
{

using namespace pb;
using namespace pb::obs;

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

/** Extract the integer following `"<field>": ` in a record line. */
uint64_t
jsonField(const std::string &line, const std::string &field)
{
    std::string needle = "\"" + field + "\": ";
    size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos) << field << " in " << line;
    if (at == std::string::npos)
        return 0;
    return std::strtoull(line.c_str() + at + needle.size(), nullptr,
                         10);
}

TEST(StatsPump, PumpVsWriterStressProducesValidNdjson)
{
    Telemetry::instance().reset();
    std::string path = ::testing::TempDir() + "stats_stress.ndjson";

    constexpr int kWriters = 4;
    constexpr uint32_t kBaseEngine = 200; // ids private to this test
    std::atomic<bool> done{false};

    StatsPump pump;
    pump.start(path, 10);

    // Writers hammer the seqlocked windows and the flow table while
    // the pump snapshots them concurrently — the race TSan must find
    // nothing wrong with.
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; t++) {
        writers.emplace_back([&, t] {
            EngineTelemetry &telem = Telemetry::instance().engine(
                kBaseEngine + static_cast<uint32_t>(t));
            FlowId id;
            id.src = 0x0a000000u + static_cast<uint32_t>(t);
            id.dst = 0xc0a80001u;
            id.srcPort = 1000;
            id.dstPort = 80;
            id.proto = 17;
            uint64_t n = 0;
            while (!done.load(std::memory_order_relaxed)) {
                uint64_t now = telemetryNowNs();
                telem.record(now, 100 + n % 7, 64, n % 50 == 0);
                telem.topk.observe(n % 13, id, 64, false);
                n++;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    done.store(true, std::memory_order_relaxed);
    for (auto &w : writers)
        w.join();
    pump.stop();

    auto lines = readLines(path);
    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines.size(), pump.records());

    uint64_t prev_seq = 0, prev_wall = 0;
    for (const std::string &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"schema\": \"packetbench.stats.v1\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"engines\": ["), std::string::npos);
        EXPECT_NE(line.find("\"snapshot_ns\": "), std::string::npos);

        uint64_t seq = jsonField(line, "seq");
        uint64_t wall = jsonField(line, "wall_ns");
        EXPECT_GT(seq, prev_seq);
        EXPECT_GT(wall, prev_wall);
        prev_seq = seq;
        prev_wall = wall;
    }
    // The stressed engines show up with flows in the final record.
    EXPECT_NE(lines.back().find("\"topk\": [{"), std::string::npos);
    std::remove(path.c_str());
}

TEST(StatsPump, ShortRunStillEmitsFinalRecord)
{
    std::string path = ::testing::TempDir() + "stats_short.ndjson";
    {
        StatsPump pump;
        // Interval far longer than the run: only the on-stop record.
        pump.start(path, 60'000);
        pump.stop();
        EXPECT_GE(pump.records(), 1u);
    }
    auto lines = readLines(path);
    ASSERT_GE(lines.size(), 1u);
    EXPECT_NE(lines[0].find("packetbench.stats.v1"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(StatsPump, EnabledFlagTracksPumpLifetime)
{
    EXPECT_FALSE(statsEnabled());
    std::string path = ::testing::TempDir() + "stats_flag.ndjson";
    StatsPump pump;
    pump.start(path, 60'000);
    EXPECT_TRUE(statsEnabled());
    pump.stop();
    EXPECT_FALSE(statsEnabled());
    std::remove(path.c_str());
}

TEST(StatsPump, RewritesPrometheusSnapshotInPlace)
{
    std::string stats = ::testing::TempDir() + "stats_prom.ndjson";
    std::string prom = ::testing::TempDir() + "stats_prom.txt";
    StatsPump pump;
    pump.setPromPath(prom);
    pump.start(stats, 60'000);
    pump.stop(); // the final record also rewrites the prom file

    std::ifstream in(prom);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("# HELP "), std::string::npos);
    EXPECT_NE(text.find("obs_stats_records"), std::string::npos);
    std::remove(stats.c_str());
    std::remove(prom.c_str());
}

TEST(StatsPump, PromRenameFailureIsCountedAndLeaksNoTempFile)
{
    // Point promPath at an existing *directory*: writing the staging
    // file succeeds, but rename() onto a non-empty directory fails.
    // The pump must warn, unlink the staging file, count the failure
    // — and keep running.
    std::string stats = ::testing::TempDir() + "stats_promfail.ndjson";
    std::string prom = ::testing::TempDir(); // a directory
    if (prom.back() == '/')
        prom.pop_back();

    Registry &reg = defaultRegistry();
    uint64_t fails_before =
        reg.counter("obs.stats.prom_fail").value();
    uint64_t writes_before =
        reg.counter("obs.stats.prom_writes").value();

    StatsPump pump;
    pump.setPromPath(prom);
    pump.start(stats, 60'000);
    pump.stop(); // one final record -> one failed prom rewrite

    EXPECT_GE(reg.counter("obs.stats.prom_fail").value(),
              fails_before + 1);
    EXPECT_EQ(reg.counter("obs.stats.prom_writes").value(),
              writes_before);

    // The pid-qualified staging file must not be left behind.
    std::string tmp =
        strprintf("%s.tmp.%ld", prom.c_str(),
                  static_cast<long>(getpid()));
    std::ifstream leaked(tmp);
    EXPECT_FALSE(leaked.good()) << "leaked staging file " << tmp;
    std::remove(stats.c_str());
}

TEST(StatsPump, PromSuccessCountsWritesAndLeavesNoTempFile)
{
    std::string stats = ::testing::TempDir() + "stats_promok.ndjson";
    std::string prom = ::testing::TempDir() + "stats_promok.txt";

    Registry &reg = defaultRegistry();
    uint64_t writes_before =
        reg.counter("obs.stats.prom_writes").value();

    StatsPump pump;
    pump.setPromPath(prom);
    pump.start(stats, 60'000);
    pump.stop();

    EXPECT_GE(reg.counter("obs.stats.prom_writes").value(),
              writes_before + 1);
    std::ifstream out(prom);
    EXPECT_TRUE(out.good());
    std::string tmp =
        strprintf("%s.tmp.%ld", prom.c_str(),
                  static_cast<long>(getpid()));
    std::ifstream leaked(tmp);
    EXPECT_FALSE(leaked.good()) << "leaked staging file " << tmp;
    std::remove(stats.c_str());
    std::remove(prom.c_str());
}

TEST(StatsPump, SetStatsEnabledControlsGateWithoutPump)
{
    // The daemon's speed reporter lights the per-packet gate without
    // a pump; the toggle must be visible and restorable.
    ASSERT_FALSE(statsEnabled());
    setStatsEnabled(true);
    EXPECT_TRUE(statsEnabled());
    setStatsEnabled(false);
    EXPECT_FALSE(statsEnabled());
}

/** Table 2-style header-processing handler: checksum the header. */
class HeaderApp : public core::Application
{
  public:
    std::string name() const override { return "header-sum"; }

    isa::Program
    setup(sim::Memory &mem) override
    {
        (void)mem;
        return isa::Assembler(sim::layout::textBase).assemble(R"(
main:
    li  t0, 0
    li  t1, 0
loop:
    lw  t2, 0(a0)
    add t1, t1, t2
    addi a0, a0, 4
    addi t0, t0, 4
    blt t0, a1, loop
    li  a1, 1
    sys 1
)");
    }
};

uint64_t
timePacketLoop(core::PacketBench &bench, uint32_t packets,
               bool extra_telemetry)
{
    net::SyntheticTrace trace(net::Profile::MRA, packets, 11);
    EngineTelemetry &telem = Telemetry::instance().engine(777);
    FlowId id;
    id.src = 0x0a0a0a0a;
    id.proto = 6;
    uint64_t fake_now = telemetryNowNs();
    auto start = std::chrono::steady_clock::now();
    for (uint32_t i = 0; i < packets; i++) {
        auto packet = trace.next();
        if (!packet)
            break;
        if (extra_telemetry) {
            // The marginal cost under test: another copy of the
            // per-packet telemetry hook, gated exactly like the one
            // in processPacket — with no pump running this must
            // compile down to one relaxed load and a branch.
            if (statsEnabled()) {
                fake_now += 1000;
                telem.record(fake_now, 100, 64, false);
                telem.topk.observe(i, id, 64, false);
            }
            bench.processPacket(*packet);
        } else {
            bench.processPacket(*packet);
        }
    }
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

TEST(StatsOverhead, DisabledTelemetryStaysUnderTwoPercent)
{
    ASSERT_FALSE(statsEnabled());
    HeaderApp app;
    core::PacketBench bench(app, {});

    constexpr uint32_t packets = 1'500;
    constexpr int trials = 6;
    // Warm-up: fault in code paths, caches, and the first-touch cost
    // of simulated memory before timing anything.
    timePacketLoop(bench, packets, false);

    uint64_t base_min = UINT64_MAX, extra_min = UINT64_MAX;
    for (int t = 0; t < trials; t++) {
        base_min =
            std::min(base_min, timePacketLoop(bench, packets, false));
        extra_min = std::min(extra_min,
                             timePacketLoop(bench, packets, true));
    }

    double overhead = static_cast<double>(extra_min) /
                          static_cast<double>(base_min) -
                      1.0;
    // <2% is the acceptance bound; a windowed record is a handful of
    // relaxed atomic adds against a multi-microsecond simulated
    // packet, and the flow gate is one relaxed load and a branch.
    EXPECT_LT(overhead, 0.02)
        << "base " << base_min << " ns vs extra " << extra_min
        << " ns";
}

} // namespace
