/**
 * @file
 * Prometheus text-exposition tests: format, name sanitization,
 * cumulative histogram buckets, special float values, and the file
 * writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/metrics.hh"

namespace
{

using namespace pb::obs;

std::string
expose(const Registry &reg)
{
    std::ostringstream out;
    reg.writePrometheus(out);
    return out.str();
}

TEST(Prometheus, CountersAndGauges)
{
    Registry reg;
    reg.counter("pb.faults.total").add(3);
    reg.gauge("pb.sim_mips").set(112.5);

    std::string text = expose(reg);
    EXPECT_NE(text.find("# TYPE pb_faults_total counter\n"
                        "pb_faults_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE pb_sim_mips gauge\n"
                        "pb_sim_mips 112.5\n"),
              std::string::npos);
}

TEST(Prometheus, HelpLinesForEverySeries)
{
    Registry reg;
    reg.counter("pb.faults.total").add(1);
    reg.gauge("stats.engine0.pps").set(5.0);
    reg.counter("some.unknown.metric").add(1);

    std::string text = expose(reg);
    // Known series carry their specific help text...
    EXPECT_NE(text.find("# HELP pb_faults_total Faulted packets "
                        "across all fault kinds\n"),
              std::string::npos);
    // ...numbered per-engine families match by prefix...
    EXPECT_NE(text.find("# HELP stats_engine0_pps Live windowed "
                        "per-engine telemetry (stats pump)\n"),
              std::string::npos);
    // ...and unknown names still get a generic HELP line.
    EXPECT_NE(text.find("# HELP some_unknown_metric "
                        "PacketBench metric\n"),
              std::string::npos);

    // Exactly one HELP per TYPE: every series is annotated.
    size_t helps = 0, types = 0;
    for (size_t pos = 0;
         (pos = text.find("# HELP ", pos)) != std::string::npos;
         pos += 7)
        helps++;
    for (size_t pos = 0;
         (pos = text.find("# TYPE ", pos)) != std::string::npos;
         pos += 7)
        types++;
    EXPECT_EQ(helps, types);
    EXPECT_EQ(helps, 3u);
}

TEST(Prometheus, NameSanitization)
{
    Registry reg;
    reg.counter("mc.engine0.faults").add(1);
    reg.counter("0weird-name").add(1);

    std::string text = expose(reg);
    EXPECT_NE(text.find("mc_engine0_faults 1\n"), std::string::npos);
    // Leading digit gets a prefix; '-' flattens to '_'.
    EXPECT_NE(text.find("_0weird_name 1\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulative)
{
    Registry reg;
    Histogram &h = reg.histogram("test.lat");
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(2);
    h.observe(5);

    std::string text = expose(reg);
    EXPECT_NE(text.find("# TYPE test_lat histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_bucket{le=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_bucket{le=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_bucket{le=\"2\"} 4\n"),
              std::string::npos);
    // 5 lands in (4, 8]; the le="4" bucket stays at 4 cumulative.
    EXPECT_NE(text.find("test_lat_bucket{le=\"4\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_bucket{le=\"8\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_lat_sum 10\n"), std::string::npos);
    EXPECT_NE(text.find("test_lat_count 5\n"), std::string::npos);
}

TEST(Prometheus, SpecialFloatValues)
{
    Registry reg;
    reg.gauge("test.nan").set(std::numeric_limits<double>::quiet_NaN());
    reg.gauge("test.pinf").set(std::numeric_limits<double>::infinity());
    reg.gauge("test.ninf")
        .set(-std::numeric_limits<double>::infinity());

    std::string text = expose(reg);
    EXPECT_NE(text.find("test_nan NaN\n"), std::string::npos);
    EXPECT_NE(text.find("test_pinf +Inf\n"), std::string::npos);
    EXPECT_NE(text.find("test_ninf -Inf\n"), std::string::npos);
}

TEST(Prometheus, FileWriterRoundTrips)
{
    Registry reg;
    reg.counter("test.events").add(11);

    std::string path = ::testing::TempDir() + "prom_test.txt";
    writePrometheusFile(path, reg);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), expose(reg));
    std::remove(path.c_str());
}

} // namespace
