/**
 * @file
 * TokenBucket tests: unlimited mode, burst accounting, approximate
 * pacing, and shutdown-aborted waits.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/shutdown.hh"
#include "service/ratelimit.hh"

namespace
{

using namespace pb;
using namespace pb::service;

class TokenBucketTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetShutdownForTest(); }
    void TearDown() override { resetShutdownForTest(); }
};

TEST_F(TokenBucketTest, RateZeroIsUnlimited)
{
    TokenBucket bucket(0, 1);
    EXPECT_EQ(bucket.rate(), 0u);
    for (int i = 0; i < 10'000; i++)
        ASSERT_TRUE(bucket.tryAcquire());
}

TEST_F(TokenBucketTest, BurstBoundsBackToBackAcquires)
{
    // 1 pps: refill is negligible within the test, so only the
    // banked burst is spendable.
    TokenBucket bucket(1, 4);
    for (int i = 0; i < 4; i++)
        EXPECT_TRUE(bucket.tryAcquire()) << "burst token " << i;
    EXPECT_FALSE(bucket.tryAcquire())
        << "burst exhausted, refill is ~1/s";
}

TEST_F(TokenBucketTest, AcquirePacesToApproximateRate)
{
    // 2000 pps, burst 1: 100 acquires need ~50 ms of refill.  Bound
    // loosely from both sides — schedulers are noisy, but an
    // unpaced loop would finish in microseconds and a broken
    // refill would never finish.
    TokenBucket bucket(2000, 1);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 100; i++)
        ASSERT_TRUE(bucket.acquire());
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GT(elapsed, 0.030);
    EXPECT_LT(elapsed, 5.0);
}

TEST_F(TokenBucketTest, AcquireAbortsOnShutdown)
{
    TokenBucket bucket(1, 1); // 1 pps: the next token is ~1 s away
    ASSERT_TRUE(bucket.tryAcquire()); // spend the banked token
    std::atomic<bool> result{true};
    std::thread waiter(
        [&] { result.store(bucket.acquire()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    requestShutdown();
    waiter.join(); // must return within one ~50 ms poll slice
    EXPECT_FALSE(result.load())
        << "acquire during shutdown must report failure";
}

} // namespace
