/**
 * @file
 * IngestRing tests: FIFO semantics, overrun policies, close/drain,
 * shutdown-aware blocking, the TraceSource adapter, and a
 * multi-producer/multi-consumer conservation stress (the TSan
 * target for the ingest plane).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/shutdown.hh"
#include "service/ingest.hh"

namespace
{

using namespace pb;
using namespace pb::service;

net::Packet
packetOfSize(size_t n, uint8_t fill)
{
    net::Packet packet;
    packet.bytes.assign(n, fill);
    return packet;
}

class IngestRingTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetShutdownForTest(); }
    void TearDown() override { resetShutdownForTest(); }
};

TEST_F(IngestRingTest, FifoSingleThread)
{
    IngestRing ring(8);
    for (size_t i = 1; i <= 4; i++)
        ASSERT_TRUE(ring.push(packetOfSize(i, 0xab)));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.accepted(), 4u);
    net::Packet out;
    for (size_t i = 1; i <= 4; i++) {
        ASSERT_TRUE(ring.pop(out));
        EXPECT_EQ(out.bytes.size(), i);
    }
    EXPECT_EQ(ring.size(), 0u);
}

TEST_F(IngestRingTest, TryPushDropsWhenFullAndCounts)
{
    IngestRing ring(2);
    EXPECT_TRUE(ring.tryPush(packetOfSize(10, 1)));
    EXPECT_TRUE(ring.tryPush(packetOfSize(10, 2)));
    EXPECT_FALSE(ring.tryPush(packetOfSize(10, 3)))
        << "full ring must refuse under drop policy";
    EXPECT_FALSE(ring.tryPush(packetOfSize(10, 4)));
    EXPECT_EQ(ring.accepted(), 2u);
    EXPECT_EQ(ring.dropped(), 2u);
    net::Packet out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_TRUE(ring.tryPush(packetOfSize(10, 5)))
        << "space freed by a pop must be reusable";
}

TEST_F(IngestRingTest, CloseDrainsRemainingThenEndsStream)
{
    IngestRing ring(8);
    ASSERT_TRUE(ring.push(packetOfSize(3, 7)));
    ASSERT_TRUE(ring.push(packetOfSize(5, 7)));
    ring.close();
    EXPECT_TRUE(ring.closed());
    EXPECT_FALSE(ring.push(packetOfSize(1, 7)))
        << "closed ring must refuse pushes";
    net::Packet out;
    EXPECT_TRUE(ring.pop(out));
    EXPECT_TRUE(ring.pop(out));
    EXPECT_FALSE(ring.pop(out)) << "closed and drained";
}

TEST_F(IngestRingTest, BlockedProducerUnblocksOnShutdown)
{
    // A producer parked on a full ring must not deadlock a daemon
    // that got SIGTERM: push() polls the shutdown flag and gives up.
    IngestRing ring(1);
    ASSERT_TRUE(ring.push(packetOfSize(4, 1)));
    std::atomic<bool> returned{false};
    std::atomic<bool> result{true};
    std::thread producer([&] {
        result.store(ring.push(packetOfSize(4, 2)));
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(returned.load()) << "push through a full ring?";
    requestShutdown();
    producer.join();
    EXPECT_TRUE(returned.load());
    EXPECT_FALSE(result.load())
        << "push during shutdown must report failure";
}

TEST_F(IngestRingTest, BlockedConsumerUnblocksOnClose)
{
    IngestRing ring(4);
    std::thread consumer([&] {
        net::Packet out;
        EXPECT_FALSE(ring.pop(out));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ring.close();
    consumer.join();
}

TEST_F(IngestRingTest, IngestSourceAdaptsRingToTraceSource)
{
    IngestRing ring(8);
    IngestSource source(ring, "test-ring");
    EXPECT_EQ(source.name(), "test-ring");
    ASSERT_TRUE(ring.push(packetOfSize(9, 0x11)));
    ASSERT_TRUE(ring.push(packetOfSize(13, 0x22)));
    ring.close();
    auto first = source.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->bytes.size(), 9u);
    auto second = source.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->bytes.size(), 13u);
    EXPECT_FALSE(source.next().has_value())
        << "closed+drained ring is end-of-trace";
}

TEST_F(IngestRingTest, MpmcStressConservesEveryPacket)
{
    // 4 producers x 2 consumers through a small ring: every byte
    // pushed must come out exactly once (conservation), with all
    // sides hitting the full/empty wait paths.  This is the TSan
    // target for the MPMC plane.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 2;
    constexpr uint64_t kPerProducer = 5'000;
    IngestRing ring(32);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; i++) {
                // Size encodes (producer, seq) so the checksum
                // detects loss and duplication, not just counts.
                size_t n = 1 + (p * kPerProducer + i) % 251;
                ASSERT_TRUE(ring.push(packetOfSize(
                    n, static_cast<uint8_t>(p))));
            }
        });
    }

    std::atomic<uint64_t> popped{0};
    std::atomic<uint64_t> byte_sum{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; c++) {
        consumers.emplace_back([&] {
            net::Packet out;
            while (ring.pop(out)) {
                popped.fetch_add(1, std::memory_order_relaxed);
                byte_sum.fetch_add(out.bytes.size(),
                                   std::memory_order_relaxed);
            }
        });
    }

    uint64_t expected_bytes = 0;
    for (int p = 0; p < kProducers; p++)
        for (uint64_t i = 0; i < kPerProducer; i++)
            expected_bytes += 1 + (p * kPerProducer + i) % 251;

    for (auto &producer : producers)
        producer.join();
    ring.close();
    for (auto &consumer : consumers)
        consumer.join();

    EXPECT_EQ(popped.load(), kProducers * kPerProducer);
    EXPECT_EQ(byte_sum.load(), expected_bytes);
    EXPECT_EQ(ring.accepted(), kProducers * kPerProducer);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.size(), 0u);
}

} // namespace
