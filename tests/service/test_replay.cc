/**
 * @file
 * TraceReplayer tests: one-pass replay, looped replay bounded by
 * maxPackets, stop() on an infinite loop, and pacing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/shutdown.hh"
#include "net/tracegen.hh"
#include "service/replay.hh"

namespace
{

using namespace pb;
using namespace pb::service;

TraceReplayer::SourceFactory
lanCorpus(uint32_t packets)
{
    return [packets] {
        return std::make_unique<net::SyntheticTrace>(
            net::Profile::LAN, packets, 2);
    };
}

/** Drain the ring on this thread until it closes; packet count. */
uint64_t
drain(IngestRing &ring)
{
    uint64_t n = 0;
    net::Packet out;
    while (ring.pop(out))
        n++;
    return n;
}

class TraceReplayerTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetShutdownForTest(); }
    void TearDown() override { resetShutdownForTest(); }
};

TEST_F(TraceReplayerTest, ReplaysWholeCorpusOnceAndClosesRing)
{
    IngestRing ring(16); // smaller than the corpus: real handoff
    TraceReplayer replayer(lanCorpus(500), ring, {});
    replayer.start();
    uint64_t drained = drain(ring);
    replayer.join();
    EXPECT_EQ(drained, 500u);
    EXPECT_EQ(replayer.packets(), 500u);
    EXPECT_EQ(replayer.loops(), 1u);
    EXPECT_TRUE(ring.closed());
}

TEST_F(TraceReplayerTest, LoopedReplayStopsAtMaxPackets)
{
    ReplayConfig cfg;
    cfg.loop = true;
    cfg.maxPackets = 1'200; // 2 full passes + a partial third
    IngestRing ring(64);
    TraceReplayer replayer(lanCorpus(500), ring, cfg);
    replayer.start();
    uint64_t drained = drain(ring);
    replayer.join();
    EXPECT_EQ(drained, 1'200u);
    EXPECT_EQ(replayer.packets(), 1'200u);
    EXPECT_EQ(replayer.loops(), 2u);
}

TEST_F(TraceReplayerTest, StopEndsAnInfiniteLoop)
{
    ReplayConfig cfg;
    cfg.loop = true;
    IngestRing ring(32);
    TraceReplayer replayer(lanCorpus(200), ring, cfg);
    replayer.start();

    std::atomic<uint64_t> drained{0};
    std::thread consumer([&] {
        net::Packet out;
        while (ring.pop(out))
            drained.fetch_add(1, std::memory_order_relaxed);
    });
    // Let it loop a few passes, then ask it to finish.
    while (replayer.loops() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    replayer.stop();
    replayer.join();
    EXPECT_TRUE(ring.closed());
    consumer.join();
    EXPECT_EQ(drained.load(), replayer.packets());
    EXPECT_GE(replayer.loops(), 2u);
}

TEST_F(TraceReplayerTest, RatePacesOfferedPackets)
{
    // 300 packets at 3000 pps with burst 1 needs ~100 ms; unpaced
    // replay of so small a corpus finishes in well under 10 ms.
    ReplayConfig cfg;
    cfg.ratePps = 3'000;
    cfg.burst = 1;
    IngestRing ring(512);
    TraceReplayer replayer(lanCorpus(300), ring, cfg);
    auto start = std::chrono::steady_clock::now();
    replayer.start();
    uint64_t drained = drain(ring);
    replayer.join();
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(drained, 300u);
    EXPECT_GT(elapsed, 0.050);
    EXPECT_LT(elapsed, 5.0);
}

TEST_F(TraceReplayerTest, ShutdownRequestEndsLoopedReplay)
{
    ReplayConfig cfg;
    cfg.loop = true;
    IngestRing ring(32);
    TraceReplayer replayer(lanCorpus(200), ring, cfg);
    replayer.start();
    std::thread consumer([&] { drain(ring); });
    while (replayer.packets() < 100)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    requestShutdown();
    replayer.join(); // must terminate without stop()
    EXPECT_TRUE(ring.closed());
    consumer.join();
}

} // namespace
