/**
 * @file
 * PacketBenchd tests: end-to-end corpus processing through the
 * ingest ring, equivalence of the ring path with the direct batch
 * path (including Stealing dispatch against the serial oracle), and
 * shutdown-driven termination of a looped service.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "apps/flow_class.hh"
#include "common/shutdown.hh"
#include "core/multicore.hh"
#include "net/tracegen.hh"
#include "service/daemon.hh"

namespace
{

using namespace pb;
using namespace pb::core;
using namespace pb::service;

MultiCoreBench::AppFactory
flowFactory(uint32_t buckets)
{
    return [buckets] {
        return std::make_unique<apps::FlowClassApp>(buckets);
    };
}

TraceReplayer::SourceFactory
corpus(net::Profile profile, uint32_t packets, uint32_t seed)
{
    return [profile, packets, seed] {
        return std::make_unique<net::SyntheticTrace>(profile,
                                                     packets, seed);
    };
}

class PacketBenchdTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetShutdownForTest(); }
    void TearDown() override { resetShutdownForTest(); }
};

TEST_F(PacketBenchdTest, ProcessesWholeCorpusThroughRing)
{
    ServiceConfig cfg;
    cfg.engines = 2;
    cfg.bench.parallel = true;
    cfg.ringCapacity = 64; // smaller than the corpus: real handoff
    cfg.speedIntervalMs = 0;
    PacketBenchd daemon(flowFactory(512), cfg);
    ServiceResult res =
        daemon.run(corpus(net::Profile::COS, 1'000, 9));

    EXPECT_EQ(res.mc.totalPackets, 1'000u);
    EXPECT_EQ(res.replayed, 1'000u);
    EXPECT_EQ(res.loops, 1u);
    EXPECT_EQ(res.ringDropped, 0u);
    EXPECT_FALSE(res.shutdownBySignal);
    EXPECT_GT(res.wallSeconds, 0.0);
    uint64_t engine_sum = 0;
    for (const EngineLoad &load : res.mc.engines)
        engine_sum += load.packets;
    EXPECT_EQ(engine_sum, 1'000u);
}

TEST_F(PacketBenchdTest, RingPathMatchesSerialOracleUnderStealing)
{
    // The service path adds a replayer thread and the MPMC ring in
    // front of the dispatcher, but packets still arrive in trace
    // order — so per-engine outcomes must stay bit-identical to a
    // plain serial MultiCoreBench run of the same corpus, even with
    // the load-adaptive Stealing policy.
    BenchConfig serial_cfg;
    serial_cfg.dispatchPolicy = DispatchPolicy::Stealing;
    MultiCoreBench serial(flowFactory(512), 3, serial_cfg);
    net::SyntheticTrace serial_trace(net::Profile::MRA, 1'500, 13);
    MultiCoreResult serial_res = serial.run(serial_trace, 1'500);

    ServiceConfig cfg;
    cfg.engines = 3;
    cfg.bench.parallel = true;
    cfg.bench.dispatchPolicy = DispatchPolicy::Stealing;
    cfg.ringCapacity = 128;
    cfg.speedIntervalMs = 0;
    PacketBenchd daemon(flowFactory(512), cfg);
    ServiceResult res =
        daemon.run(corpus(net::Profile::MRA, 1'500, 13));

    ASSERT_EQ(res.mc.engines.size(), serial_res.engines.size());
    for (size_t e = 0; e < serial_res.engines.size(); e++) {
        EXPECT_EQ(res.mc.engines[e].packets,
                  serial_res.engines[e].packets)
            << "engine " << e;
        EXPECT_EQ(res.mc.engines[e].instructions,
                  serial_res.engines[e].instructions)
            << "engine " << e;
        EXPECT_EQ(res.mc.engines[e].bytes,
                  serial_res.engines[e].bytes)
            << "engine " << e;
    }
    apps::FlowClassApp probe(512);
    for (uint32_t e = 0; e < 3; e++)
        EXPECT_EQ(
            probe.simFlowCount(daemon.bench().engine(e).memory()),
            probe.simFlowCount(serial.engine(e).memory()))
            << "engine " << e;
}

TEST_F(PacketBenchdTest, ShutdownRequestStopsLoopedService)
{
    // A looped service never runs out of input; a shutdown request
    // (what SIGTERM sets) must stop the replayer, drain, and return.
    ServiceConfig cfg;
    cfg.engines = 2;
    cfg.bench.parallel = true;
    cfg.ringCapacity = 64;
    cfg.speedIntervalMs = 0;
    cfg.replay.loop = true;
    PacketBenchd daemon(flowFactory(256), cfg);

    std::thread trigger([] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(150));
        requestShutdown();
    });
    ServiceResult res =
        daemon.run(corpus(net::Profile::LAN, 400, 5));
    trigger.join();

    EXPECT_TRUE(res.shutdownBySignal);
    EXPECT_GT(res.mc.totalPackets, 0u);
    // Everything dispatched to an engine was fully processed (the
    // drain contract): engine totals sum to the dispatched count.
    uint64_t engine_sum = 0;
    for (const EngineLoad &load : res.mc.engines)
        engine_sum += load.packets;
    EXPECT_EQ(engine_sum, res.mc.totalPackets);
    EXPECT_LE(res.mc.totalPackets, res.replayed);
}

TEST_F(PacketBenchdTest, MaxPacketsBoundsALoopedService)
{
    ServiceConfig cfg;
    cfg.engines = 2;
    cfg.bench.parallel = true;
    cfg.ringCapacity = 64;
    cfg.speedIntervalMs = 0;
    cfg.replay.loop = true;
    cfg.replay.maxPackets = 900; // 2 passes + a partial third
    PacketBenchd daemon(flowFactory(256), cfg);
    ServiceResult res =
        daemon.run(corpus(net::Profile::ODU, 400, 3));
    EXPECT_EQ(res.replayed, 900u);
    EXPECT_EQ(res.mc.totalPackets, 900u);
    EXPECT_GE(res.loops, 2u);
    EXPECT_FALSE(res.shutdownBySignal);
}

} // namespace
